//! Discrete (categorical) structural causal models.

use fairsel_graph::{Dag, NodeId};
use fairsel_math::dist::{sample_dirichlet, AliasTable};
use rand::Rng;
use std::fmt;

/// Errors from SCM construction and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum ScmError {
    /// A CPT row does not sum to 1 (within tolerance) or has negatives.
    BadProbabilities { node: String, row: usize },
    /// CPT shape does not match the node's parents/arity.
    ShapeMismatch {
        node: String,
        expected_rows: usize,
        got_rows: usize,
    },
    /// A node was given no CPT.
    MissingCpt(String),
    /// Intervention or query used a value outside a node's arity.
    ValueOutOfRange {
        node: String,
        value: u32,
        arity: u32,
    },
}

impl fmt::Display for ScmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScmError::BadProbabilities { node, row } => {
                write!(f, "CPT for {node} has an invalid probability row {row}")
            }
            ScmError::ShapeMismatch {
                node,
                expected_rows,
                got_rows,
            } => write!(
                f,
                "CPT for {node} has {got_rows} rows, expected {expected_rows}"
            ),
            ScmError::MissingCpt(n) => write!(f, "no CPT provided for node {n}"),
            ScmError::ValueOutOfRange { node, value, arity } => {
                write!(f, "value {value} out of range for {node} (arity {arity})")
            }
        }
    }
}

impl std::error::Error for ScmError {}

/// Conditional probability table of one node.
///
/// Rows are indexed by the mixed-radix code of the parent values (parents in
/// the node's sorted parent order); each row is a distribution over the
/// node's `arity` values. An [`AliasTable`] per row makes repeated sampling
/// O(1).
#[derive(Clone, Debug)]
pub struct Cpt {
    arity: u32,
    parent_arities: Vec<u32>,
    /// Row-major `rows × arity` probabilities.
    probs: Vec<f64>,
    alias: Vec<AliasTable>,
}

impl Cpt {
    /// Build a CPT, validating shape and row normalization.
    pub fn new(arity: u32, parent_arities: Vec<u32>, probs: Vec<f64>) -> Result<Self, String> {
        assert!(arity >= 1, "Cpt: arity must be >= 1");
        let rows: usize = parent_arities.iter().map(|&a| a as usize).product();
        if probs.len() != rows * arity as usize {
            return Err(format!(
                "CPT buffer has {} entries, expected {} rows x {} values",
                probs.len(),
                rows,
                arity
            ));
        }
        let mut alias = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &probs[r * arity as usize..(r + 1) * arity as usize];
            let sum: f64 = row.iter().sum();
            if row.iter().any(|&p| !(0.0..=1.0 + 1e-9).contains(&p)) || (sum - 1.0).abs() > 1e-6 {
                return Err(format!(
                    "CPT row {r} is not a probability distribution (sum {sum})"
                ));
            }
            alias.push(AliasTable::new(row));
        }
        Ok(Self {
            arity,
            parent_arities,
            probs,
            alias,
        })
    }

    /// Point-mass CPT on `value` with no parents (used by interventions).
    pub fn point_mass(arity: u32, value: u32) -> Self {
        assert!(value < arity, "point_mass: value {value} >= arity {arity}");
        let mut probs = vec![0.0; arity as usize];
        probs[value as usize] = 1.0;
        Self::new(arity, Vec::new(), probs).expect("point mass is valid")
    }

    /// Uniform CPT with no parents.
    pub fn uniform(arity: u32) -> Self {
        let probs = vec![1.0 / arity as f64; arity as usize];
        Self::new(arity, Vec::new(), probs).expect("uniform is valid")
    }

    /// Random CPT with dependence `strength ∈ [0,1]` on the parents:
    /// 0 ⇒ every row identical (child independent of parents);
    /// 1 ⇒ rows drawn independently from a sparse Dirichlet (strong,
    /// near-deterministic dependence).
    pub fn random<R: Rng + ?Sized>(
        rng: &mut R,
        arity: u32,
        parent_arities: &[u32],
        strength: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&strength), "strength must be in [0,1]");
        let rows: usize = parent_arities.iter().map(|&a| a as usize).product();
        let k = arity as usize;
        // Base distribution shared by all rows; sparse Dirichlet rows pull
        // probability mass to different values per parent state.
        let base = sample_dirichlet(rng, &vec![2.0; k]);
        let mut probs = Vec::with_capacity(rows * k);
        for _ in 0..rows {
            let spiky = sample_dirichlet(rng, &vec![0.35; k]);
            for i in 0..k {
                probs.push((1.0 - strength) * base[i] + strength * spiky[i]);
            }
        }
        Self::new(arity, parent_arities.to_vec(), probs).expect("mixture rows are normalized")
    }

    /// Number of values this node takes.
    pub fn arity(&self) -> u32 {
        self.arity
    }

    /// Number of parent-state rows.
    pub fn rows(&self) -> usize {
        self.alias.len()
    }

    /// Mixed-radix row index for the given parent values.
    #[inline]
    fn row_index(&self, parent_values: &[u32]) -> usize {
        debug_assert_eq!(parent_values.len(), self.parent_arities.len());
        let mut idx = 0usize;
        for (&v, &a) in parent_values.iter().zip(&self.parent_arities) {
            debug_assert!(v < a, "parent value out of range");
            idx = idx * a as usize + v as usize;
        }
        idx
    }

    /// Probability `P(value | parent_values)`.
    pub fn prob(&self, parent_values: &[u32], value: u32) -> f64 {
        let r = self.row_index(parent_values);
        self.probs[r * self.arity as usize + value as usize]
    }

    /// Sample a value given parent values.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, parent_values: &[u32]) -> u32 {
        self.alias[self.row_index(parent_values)].sample(rng)
    }

    /// Borrow a probability row.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.probs[r * self.arity as usize..(r + 1) * self.arity as usize]
    }
}

/// A fully specified discrete structural causal model.
#[derive(Clone, Debug)]
pub struct DiscreteScm {
    dag: Dag,
    cpts: Vec<Cpt>,
    topo: Vec<NodeId>,
}

impl DiscreteScm {
    /// Underlying causal graph.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Arity of a node.
    pub fn arity(&self, v: NodeId) -> u32 {
        self.cpts[v.index()].arity()
    }

    /// Borrow a node's CPT.
    pub fn cpt(&self, v: NodeId) -> &Cpt {
        &self.cpts[v.index()]
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.dag.len()
    }

    /// True when the model has no variables.
    pub fn is_empty(&self) -> bool {
        self.dag.is_empty()
    }

    /// Sample one joint assignment into `out` (indexed by `NodeId`).
    pub fn sample_row<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [u32]) {
        assert_eq!(out.len(), self.len(), "sample_row: buffer size mismatch");
        let mut parent_buf: Vec<u32> = Vec::with_capacity(8);
        for &v in &self.topo {
            parent_buf.clear();
            parent_buf.extend(self.dag.parents(v).iter().map(|p| out[p.index()]));
            out[v.index()] = self.cpts[v.index()].sample(rng, &parent_buf);
        }
    }

    /// Sample `n` rows, returned column-major (`columns[node][row]`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Vec<u32>> {
        let mut cols = vec![Vec::with_capacity(n); self.len()];
        let mut row = vec![0u32; self.len()];
        for _ in 0..n {
            self.sample_row(rng, &mut row);
            for (c, &v) in cols.iter_mut().zip(&row) {
                c.push(v);
            }
        }
        cols
    }

    /// Pearl's `do`-operator: returns the mutilated SCM where each
    /// `(node, value)` has its incoming edges removed and its mechanism
    /// replaced with a point mass.
    pub fn intervene(&self, assignments: &[(NodeId, u32)]) -> Result<DiscreteScm, ScmError> {
        for &(v, val) in assignments {
            let a = self.arity(v);
            if val >= a {
                return Err(ScmError::ValueOutOfRange {
                    node: self.dag.name(v).to_owned(),
                    value: val,
                    arity: a,
                });
            }
        }
        let targets: Vec<NodeId> = assignments.iter().map(|&(v, _)| v).collect();
        let dag = self.dag.intervene(&targets);
        let mut cpts = self.cpts.clone();
        for &(v, val) in assignments {
            cpts[v.index()] = Cpt::point_mass(self.arity(v), val);
        }
        let topo = dag.topological_order();
        Ok(DiscreteScm { dag, cpts, topo })
    }

    /// Log-probability of a full assignment under the model.
    pub fn log_prob(&self, assignment: &[u32]) -> f64 {
        assert_eq!(assignment.len(), self.len());
        let mut parent_buf: Vec<u32> = Vec::with_capacity(8);
        let mut lp = 0.0;
        for v in self.dag.nodes() {
            parent_buf.clear();
            parent_buf.extend(self.dag.parents(v).iter().map(|p| assignment[p.index()]));
            let p = self.cpts[v.index()].prob(&parent_buf, assignment[v.index()]);
            if p == 0.0 {
                return f64::NEG_INFINITY;
            }
            lp += p.ln();
        }
        lp
    }

    /// Total joint state-space size, saturating at `usize::MAX`.
    pub fn state_space(&self) -> usize {
        self.cpts
            .iter()
            .map(|c| c.arity() as usize)
            .try_fold(1usize, |acc, a| acc.checked_mul(a))
            .unwrap_or(usize::MAX)
    }

    /// Enumerate the exact joint distribution, invoking `visit(assignment,
    /// probability)` once per assignment with positive probability mass
    /// potential (zero-probability assignments may also be visited).
    ///
    /// # Panics
    /// Panics when the state space exceeds `2^22` (≈4.2M) assignments —
    /// exact enumeration is a test/verification tool for small fixtures.
    pub fn enumerate_joint<F: FnMut(&[u32], f64)>(&self, mut visit: F) {
        let space = self.state_space();
        assert!(
            space <= 1 << 22,
            "enumerate_joint: state space {space} too large for exact enumeration"
        );
        let n = self.len();
        let mut assignment = vec![0u32; n];
        // Depth-first over the topological order, accumulating probability.
        // Iterative stack of (depth, prob) with explicit value counters.
        self.enumerate_rec(0, 1.0, &mut assignment, &mut visit);
    }

    fn enumerate_rec<F: FnMut(&[u32], f64)>(
        &self,
        depth: usize,
        prob: f64,
        assignment: &mut Vec<u32>,
        visit: &mut F,
    ) {
        if depth == self.topo.len() {
            visit(assignment, prob);
            return;
        }
        let v = self.topo[depth];
        let parent_vals: Vec<u32> = self
            .dag
            .parents(v)
            .iter()
            .map(|p| assignment[p.index()])
            .collect();
        for val in 0..self.arity(v) {
            let p = self.cpts[v.index()].prob(&parent_vals, val);
            if p == 0.0 {
                continue;
            }
            assignment[v.index()] = val;
            self.enumerate_rec(depth + 1, prob * p, assignment, visit);
        }
        assignment[v.index()] = 0;
    }

    /// Exact marginal distribution of one node (by enumeration).
    pub fn exact_marginal(&self, v: NodeId) -> Vec<f64> {
        let mut dist = vec![0.0; self.arity(v) as usize];
        self.enumerate_joint(|a, p| dist[a[v.index()] as usize] += p);
        dist
    }
}

/// Builder for [`DiscreteScm`]. Declare arities first, then either attach
/// explicit CPTs or fill the remainder randomly with a chosen dependence
/// strength.
pub struct DiscreteScmBuilder {
    dag: Dag,
    arities: Vec<u32>,
    cpts: Vec<Option<Cpt>>,
}

impl DiscreteScmBuilder {
    /// Start from a DAG with every node given the same arity.
    pub fn uniform_arity(dag: Dag, arity: u32) -> Self {
        let n = dag.len();
        Self {
            dag,
            arities: vec![arity; n],
            cpts: vec![None; n],
        }
    }

    /// Start from a DAG with per-node arities (indexed by `NodeId`).
    pub fn with_arities(dag: Dag, arities: Vec<u32>) -> Self {
        assert_eq!(dag.len(), arities.len(), "arity per node required");
        let n = dag.len();
        Self {
            dag,
            arities,
            cpts: vec![None; n],
        }
    }

    /// Attach an explicit CPT (probabilities over rows of parent states in
    /// sorted-parent mixed-radix order).
    pub fn cpt(mut self, node: NodeId, probs: Vec<f64>) -> Result<Self, ScmError> {
        let parent_arities: Vec<u32> = self
            .dag
            .parents(node)
            .iter()
            .map(|p| self.arities[p.index()])
            .collect();
        let cpt = Cpt::new(self.arities[node.index()], parent_arities, probs).map_err(|_| {
            ScmError::BadProbabilities {
                node: self.dag.name(node).to_owned(),
                row: 0,
            }
        })?;
        self.cpts[node.index()] = Some(cpt);
        Ok(self)
    }

    /// Fill every node that lacks a CPT with a random one of the given
    /// dependence `strength`.
    pub fn fill_random<R: Rng + ?Sized>(mut self, rng: &mut R, strength: f64) -> Self {
        for v in self.dag.nodes() {
            if self.cpts[v.index()].is_none() {
                let parent_arities: Vec<u32> = self
                    .dag
                    .parents(v)
                    .iter()
                    .map(|p| self.arities[p.index()])
                    .collect();
                self.cpts[v.index()] = Some(Cpt::random(
                    rng,
                    self.arities[v.index()],
                    &parent_arities,
                    strength,
                ));
            }
        }
        self
    }

    /// Fill a specific node with a random CPT of the given strength.
    pub fn fill_node_random<R: Rng + ?Sized>(
        mut self,
        rng: &mut R,
        node: NodeId,
        strength: f64,
    ) -> Self {
        let parent_arities: Vec<u32> = self
            .dag
            .parents(node)
            .iter()
            .map(|p| self.arities[p.index()])
            .collect();
        self.cpts[node.index()] = Some(Cpt::random(
            rng,
            self.arities[node.index()],
            &parent_arities,
            strength,
        ));
        self
    }

    /// Finish; errors if any node is missing a CPT.
    pub fn build(self) -> Result<DiscreteScm, ScmError> {
        let mut cpts = Vec::with_capacity(self.cpts.len());
        for (i, c) in self.cpts.into_iter().enumerate() {
            match c {
                Some(c) => cpts.push(c),
                None => {
                    return Err(ScmError::MissingCpt(
                        self.dag.name(NodeId(i as u32)).to_owned(),
                    ))
                }
            }
        }
        let topo = self.dag.topological_order();
        Ok(DiscreteScm {
            dag: self.dag,
            cpts,
            topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_graph::DagBuilder;
    use fairsel_math::assert_close;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    /// S -> X -> Y with binary variables and hand-written CPTs.
    fn chain_scm() -> DiscreteScm {
        let g = DagBuilder::new()
            .nodes(["S", "X", "Y"])
            .edge("S", "X")
            .edge("X", "Y")
            .build();
        let s = g.expect_node("S");
        let x = g.expect_node("X");
        let y = g.expect_node("Y");
        DiscreteScmBuilder::uniform_arity(g, 2)
            .cpt(s, vec![0.4, 0.6])
            .unwrap()
            // P(X|S): S=0 -> [0.9, 0.1]; S=1 -> [0.2, 0.8]
            .cpt(x, vec![0.9, 0.1, 0.2, 0.8])
            .unwrap()
            // P(Y|X): X=0 -> [0.7, 0.3]; X=1 -> [0.1, 0.9]
            .cpt(y, vec![0.7, 0.3, 0.1, 0.9])
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn cpt_validates_rows() {
        assert!(Cpt::new(2, vec![], vec![0.5, 0.5]).is_ok());
        assert!(Cpt::new(2, vec![], vec![0.5, 0.6]).is_err());
        assert!(Cpt::new(2, vec![], vec![0.5]).is_err());
        assert!(Cpt::new(2, vec![2], vec![0.5, 0.5, 1.0, 0.0]).is_ok());
    }

    #[test]
    fn cpt_row_indexing_mixed_radix() {
        // Two parents with arities 2 and 3: rows ordered (0,0),(0,1),(0,2),(1,0)...
        let mut probs = Vec::new();
        for r in 0..6 {
            probs.extend([1.0 - r as f64 * 0.1, r as f64 * 0.1]);
        }
        let cpt = Cpt::new(2, vec![2, 3], probs).unwrap();
        assert_close!(cpt.prob(&[0, 0], 1), 0.0, 1e-12);
        assert_close!(cpt.prob(&[0, 2], 1), 0.2, 1e-12);
        assert_close!(cpt.prob(&[1, 0], 1), 0.3, 1e-12);
        assert_close!(cpt.prob(&[1, 2], 1), 0.5, 1e-12);
    }

    #[test]
    fn point_mass_is_deterministic() {
        let cpt = Cpt::point_mass(4, 2);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(cpt.sample(&mut r, &[]), 2);
        }
    }

    #[test]
    fn exact_marginal_of_chain() {
        let scm = chain_scm();
        let x = scm.dag().expect_node("X");
        // P(X=1) = P(S=0)·0.1 + P(S=1)·0.8 = 0.04 + 0.48 = 0.52
        let m = scm.exact_marginal(x);
        assert_close!(m[1], 0.52, 1e-12);
        assert_close!(m[0] + m[1], 1.0, 1e-12);
    }

    #[test]
    fn sampling_matches_exact_marginal() {
        let scm = chain_scm();
        let y = scm.dag().expect_node("Y");
        let exact = scm.exact_marginal(y);
        let mut r = rng();
        let n = 200_000;
        let cols = scm.sample(&mut r, n);
        let freq1 = cols[y.index()].iter().filter(|&&v| v == 1).count() as f64 / n as f64;
        assert_close!(freq1, exact[1], 0.01);
    }

    #[test]
    fn enumerate_joint_sums_to_one() {
        let scm = chain_scm();
        let mut total = 0.0;
        scm.enumerate_joint(|_, p| total += p);
        assert_close!(total, 1.0, 1e-12);
    }

    #[test]
    fn log_prob_consistent_with_enumeration() {
        let scm = chain_scm();
        scm.enumerate_joint(|a, p| {
            assert_close!(scm.log_prob(a).exp(), p, 1e-12);
        });
    }

    #[test]
    fn intervention_clamps_and_cuts() {
        let scm = chain_scm();
        let s = scm.dag().expect_node("S");
        let x = scm.dag().expect_node("X");
        let cut = scm.intervene(&[(x, 1)]).unwrap();
        // X no longer depends on S.
        assert!(cut.dag().parents(x).is_empty());
        // P(X=1) = 1 under do(X=1).
        let m = cut.exact_marginal(x);
        assert_close!(m[1], 1.0, 1e-12);
        // S marginal unchanged by intervening downstream.
        let ms = cut.exact_marginal(s);
        assert_close!(ms[1], 0.6, 1e-12);
    }

    #[test]
    fn truncated_factorization_identity() {
        // For chain S -> X -> Y: P(Y | do(X=x)) == P(Y | X=x).
        let scm = chain_scm();
        let x = scm.dag().expect_node("X");
        let y = scm.dag().expect_node("Y");
        let cut = scm.intervene(&[(x, 1)]).unwrap();
        let m = cut.exact_marginal(y);
        assert_close!(m[1], 0.9, 1e-12); // = P(Y=1|X=1)
    }

    #[test]
    fn intervention_value_out_of_range() {
        let scm = chain_scm();
        let x = scm.dag().expect_node("X");
        assert!(matches!(
            scm.intervene(&[(x, 5)]),
            Err(ScmError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn builder_missing_cpt_errors() {
        let g = DagBuilder::new().nodes(["a", "b"]).edge("a", "b").build();
        let a = g.expect_node("a");
        let res = DiscreteScmBuilder::uniform_arity(g, 2)
            .cpt(a, vec![0.5, 0.5])
            .unwrap()
            .build();
        assert!(matches!(res, Err(ScmError::MissingCpt(_))));
    }

    #[test]
    fn random_cpt_strength_zero_is_parent_independent() {
        let mut r = rng();
        let cpt = Cpt::random(&mut r, 3, &[2, 2], 0.0);
        for v in 0..3 {
            let p00 = cpt.prob(&[0, 0], v);
            for pv in [[0, 1], [1, 0], [1, 1]] {
                assert_close!(cpt.prob(&pv, v), p00, 1e-12);
            }
        }
    }

    #[test]
    fn random_cpt_strength_one_varies_rows() {
        let mut r = rng();
        let cpt = Cpt::random(&mut r, 3, &[2], 1.0);
        // The two rows should not be (near-)identical.
        let d: f64 = (0..3)
            .map(|v| (cpt.prob(&[0], v) - cpt.prob(&[1], v)).abs())
            .sum();
        assert!(d > 0.05, "strength-1 rows too similar: total diff {d}");
    }

    #[test]
    fn random_fill_produces_valid_model() {
        let mut r = rng();
        let g = DagBuilder::new()
            .nodes(["a", "b", "c", "d"])
            .edge("a", "b")
            .edge("b", "c")
            .edge("a", "d")
            .build();
        let scm = DiscreteScmBuilder::uniform_arity(g, 3)
            .fill_random(&mut r, 0.8)
            .build()
            .unwrap();
        let mut total = 0.0;
        scm.enumerate_joint(|_, p| total += p);
        assert_close!(total, 1.0, 1e-9);
    }

    #[test]
    fn faithfulness_sanity_chain_dependence() {
        // In the chain SCM, X and Y are dependent; conditioning on X makes
        // S and Y independent. Verify via exact joint.
        let scm = chain_scm();
        let (s, x, y) = (
            scm.dag().expect_node("S"),
            scm.dag().expect_node("X"),
            scm.dag().expect_node("Y"),
        );
        // Compute P(S, X, Y) table.
        let mut joint = [0.0; 8];
        scm.enumerate_joint(|a, p| {
            joint[(a[s.index()] * 4 + a[x.index()] * 2 + a[y.index()]) as usize] += p
        });
        // CMI(S; Y | X) should be ~0; MI(S; Y) > 0.
        let p3 = |sv: usize, xv: usize, yv: usize| joint[sv * 4 + xv * 2 + yv];
        let mut cmi = 0.0;
        for xv in 0..2 {
            let px: f64 = (0..2)
                .flat_map(|sv| (0..2).map(move |yv| (sv, yv)))
                .map(|(sv, yv)| p3(sv, xv, yv))
                .sum();
            for sv in 0..2 {
                for yv in 0..2 {
                    let pxy = p3(sv, xv, yv);
                    if pxy == 0.0 {
                        continue;
                    }
                    let ps_x: f64 = (0..2).map(|yy| p3(sv, xv, yy)).sum();
                    let py_x: f64 = (0..2).map(|ss| p3(ss, xv, yv)).sum();
                    cmi += pxy * ((pxy * px) / (ps_x * py_x)).ln();
                }
            }
        }
        assert_close!(cmi, 0.0, 1e-10);
    }

    #[test]
    fn state_space_guard() {
        let mut g = Dag::new();
        for i in 0..40 {
            g.add_node(format!("v{i}")).unwrap();
        }
        let scm = DiscreteScmBuilder::uniform_arity(g, 2)
            .fill_random(&mut rng(), 0.5)
            .build()
            .unwrap();
        assert_eq!(scm.state_space(), 1usize << 40);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scm.enumerate_joint(|_, _| {});
        }));
        assert!(res.is_err(), "enumeration guard should trip");
    }
}
