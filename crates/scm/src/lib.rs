//! Structural causal models over a [`fairsel_graph::Dag`].
//!
//! Two model families cover everything the paper's evaluation needs:
//!
//! * [`DiscreteScm`] — each variable is categorical with a conditional
//!   probability table (CPT) per joint parent state. This is the data
//!   generator behind every synthetic dataset in the workspace (the §5.3
//!   scaling graphs, the simulated MEPS/German/Compas/Adult datasets, and
//!   the Figure 1 / Figure 6 fixtures). Ancestral sampling uses Walker
//!   alias tables so the 5000-node graphs sample in milliseconds per row.
//! * [`GaussianScm`] — linear-Gaussian mechanisms for the continuous
//!   workloads (RCIT calibration and the Figure 3(b) runtime experiment).
//!
//! Both support Pearl's `do`-operator (§2.2): [`DiscreteScm::intervene`]
//! mutilates the graph and clamps values, which is exactly the semantics
//! Definition 1 (interventional fairness) quantifies over. For small models
//! [`DiscreteScm::enumerate_joint`] walks the exact joint distribution so
//! tests can verify causal fairness *by definition* rather than by sampling.

pub mod discrete;
pub mod gaussian;

pub use discrete::{Cpt, DiscreteScm, DiscreteScmBuilder, ScmError};
pub use gaussian::{GaussianScm, GaussianScmBuilder};
