//! Linear-Gaussian structural causal models.
//!
//! Each variable is `X_v = b_v + Σ_p w_{p→v} · X_p + σ_v · ε_v` with
//! independent standard-normal noise. These models generate the continuous
//! workloads used to calibrate the RCIT conditional-independence test and
//! to reproduce Figure 3(b) (runtime vs. conditioning-set size), and they
//! make partial-correlation ground truth easy to reason about.

use fairsel_graph::{Dag, NodeId};
use fairsel_math::dist::sample_std_normal;
use rand::Rng;
use std::collections::HashMap;

/// A linear-Gaussian SCM over a DAG.
#[derive(Clone, Debug)]
pub struct GaussianScm {
    dag: Dag,
    /// Intercept per node.
    bias: Vec<f64>,
    /// Noise standard deviation per node.
    sigma: Vec<f64>,
    /// Edge weights keyed by (parent, child).
    // analyze: bounded-by one entry per edge of the fixed DAG
    weights: HashMap<(NodeId, NodeId), f64>,
    topo: Vec<NodeId>,
}

impl GaussianScm {
    /// Underlying causal graph.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.dag.len()
    }

    /// True when the model has no variables.
    pub fn is_empty(&self) -> bool {
        self.dag.is_empty()
    }

    /// Weight of the edge `parent -> child` (0 when absent).
    pub fn weight(&self, parent: NodeId, child: NodeId) -> f64 {
        self.weights.get(&(parent, child)).copied().unwrap_or(0.0)
    }

    /// Sample one joint assignment into `out` (indexed by `NodeId`).
    pub fn sample_row<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        assert_eq!(out.len(), self.len(), "sample_row: buffer size mismatch");
        for &v in &self.topo {
            let mut val = self.bias[v.index()];
            for &p in self.dag.parents(v) {
                val += self.weight(p, v) * out[p.index()];
            }
            val += self.sigma[v.index()] * sample_std_normal(rng);
            out[v.index()] = val;
        }
    }

    /// Sample `n` rows column-major.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Vec<f64>> {
        let mut cols = vec![Vec::with_capacity(n); self.len()];
        let mut row = vec![0.0; self.len()];
        for _ in 0..n {
            self.sample_row(rng, &mut row);
            for (c, &v) in cols.iter_mut().zip(&row) {
                c.push(v);
            }
        }
        cols
    }

    /// `do`-operator: clamp nodes to constants and cut their incoming edges.
    pub fn intervene(&self, assignments: &[(NodeId, f64)]) -> GaussianScm {
        let targets: Vec<NodeId> = assignments.iter().map(|&(v, _)| v).collect();
        let dag = self.dag.intervene(&targets);
        let mut bias = self.bias.clone();
        let mut sigma = self.sigma.clone();
        let mut weights = self.weights.clone();
        for &(v, val) in assignments {
            bias[v.index()] = val;
            sigma[v.index()] = 0.0;
            for p in self.dag.parents(v) {
                weights.remove(&(*p, v));
            }
        }
        let topo = dag.topological_order();
        GaussianScm {
            dag,
            bias,
            sigma,
            weights,
            topo,
        }
    }
}

/// Builder for [`GaussianScm`].
pub struct GaussianScmBuilder {
    dag: Dag,
    bias: Vec<f64>,
    sigma: Vec<f64>,
    // analyze: bounded-by one entry per edge of the fixed DAG
    weights: HashMap<(NodeId, NodeId), f64>,
}

impl GaussianScmBuilder {
    /// Start from a DAG with zero intercepts, unit noise, and zero weights.
    pub fn new(dag: Dag) -> Self {
        let n = dag.len();
        Self {
            dag,
            bias: vec![0.0; n],
            sigma: vec![1.0; n],
            weights: HashMap::new(),
        }
    }

    /// Set one edge weight. The edge must exist in the DAG.
    pub fn weight(mut self, parent: NodeId, child: NodeId, w: f64) -> Self {
        assert!(
            self.dag.has_edge(parent, child),
            "weight on missing edge {} -> {}",
            self.dag.name(parent),
            self.dag.name(child)
        );
        self.weights.insert((parent, child), w);
        self
    }

    /// Set a node's intercept.
    pub fn bias(mut self, v: NodeId, b: f64) -> Self {
        self.bias[v.index()] = b;
        self
    }

    /// Set a node's noise standard deviation (must be ≥ 0).
    pub fn sigma(mut self, v: NodeId, s: f64) -> Self {
        assert!(s >= 0.0, "sigma must be non-negative");
        self.sigma[v.index()] = s;
        self
    }

    /// Give every edge a random weight with magnitude in `[lo, hi]` and
    /// random sign.
    pub fn random_weights<R: Rng + ?Sized>(mut self, rng: &mut R, lo: f64, hi: f64) -> Self {
        assert!(0.0 <= lo && lo <= hi, "invalid weight range");
        for (f, t) in self.dag.edges() {
            let mag = rng.gen_range(lo..=hi);
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            self.weights.insert((f, t), sign * mag);
        }
        self
    }

    /// Finish. Edges without an explicit weight default to 1.0.
    pub fn build(mut self) -> GaussianScm {
        for (f, t) in self.dag.edges() {
            self.weights.entry((f, t)).or_insert(1.0);
        }
        let topo = self.dag.topological_order();
        GaussianScm {
            dag: self.dag,
            bias: self.bias,
            sigma: self.sigma,
            weights: self.weights,
            topo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_graph::DagBuilder;
    use fairsel_math::assert_close;
    use fairsel_math::stats::{mean, pearson, variance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    /// z -> x, z -> y: x and y correlated only through z.
    fn fork() -> GaussianScm {
        let g = DagBuilder::new()
            .nodes(["z", "x", "y"])
            .edge("z", "x")
            .edge("z", "y")
            .build();
        let z = g.expect_node("z");
        let x = g.expect_node("x");
        let y = g.expect_node("y");
        GaussianScmBuilder::new(g)
            .weight(z, x, 0.8)
            .weight(z, y, 0.8)
            .build()
    }

    #[test]
    fn marginal_moments_of_chain() {
        // x -> y with weight 2, bias 1 on y, unit noises:
        // E[y] = 1, Var[y] = 4·Var[x] + 1 = 5.
        let g = DagBuilder::new().nodes(["x", "y"]).edge("x", "y").build();
        let x = g.expect_node("x");
        let y = g.expect_node("y");
        let scm = GaussianScmBuilder::new(g)
            .weight(x, y, 2.0)
            .bias(y, 1.0)
            .build();
        let mut r = rng();
        let cols = scm.sample(&mut r, 100_000);
        assert_close!(mean(&cols[y.index()]), 1.0, 0.05);
        assert_close!(variance(&cols[y.index()]), 5.0, 0.15);
    }

    #[test]
    fn fork_induces_correlation() {
        let scm = fork();
        let mut r = rng();
        let cols = scm.sample(&mut r, 50_000);
        let x = scm.dag().expect_node("x").index();
        let y = scm.dag().expect_node("y").index();
        // theoretical corr = 0.64 / (sqrt(1.64)·sqrt(1.64)) ≈ 0.39
        let rho = pearson(&cols[x], &cols[y]);
        assert_close!(rho, 0.64 / 1.64, 0.02);
    }

    #[test]
    fn intervention_breaks_confounding() {
        let scm = fork();
        let x = scm.dag().expect_node("x");
        let y = scm.dag().expect_node("y");
        let cut = scm.intervene(&[(x, 3.0)]);
        let mut r = rng();
        let cols = cut.sample(&mut r, 20_000);
        // x clamped exactly.
        assert!(cols[x.index()].iter().all(|&v| v == 3.0));
        // y unaffected by do(x): mean stays 0.
        assert_close!(mean(&cols[y.index()]), 0.0, 0.05);
    }

    #[test]
    fn default_weight_is_one() {
        let g = DagBuilder::new().nodes(["a", "b"]).edge("a", "b").build();
        let a = g.expect_node("a");
        let b = g.expect_node("b");
        let scm = GaussianScmBuilder::new(g).build();
        assert_eq!(scm.weight(a, b), 1.0);
        assert_eq!(scm.weight(b, a), 0.0);
    }

    #[test]
    fn random_weights_within_range() {
        let g = DagBuilder::new()
            .nodes(["a", "b", "c"])
            .edge("a", "b")
            .edge("b", "c")
            .edge("a", "c")
            .build();
        let mut r = rng();
        let scm = GaussianScmBuilder::new(g)
            .random_weights(&mut r, 0.5, 1.5)
            .build();
        for (f, t) in scm.dag().edges() {
            let w = scm.weight(f, t).abs();
            assert!((0.5..=1.5).contains(&w), "weight {w} out of range");
        }
    }

    #[test]
    #[should_panic(expected = "missing edge")]
    fn weight_on_missing_edge_panics() {
        let g = DagBuilder::new().nodes(["a", "b"]).build();
        let a = g.expect_node("a");
        let b = g.expect_node("b");
        let _ = GaussianScmBuilder::new(g).weight(a, b, 1.0);
    }

    #[test]
    fn zero_sigma_is_deterministic_function() {
        let g = DagBuilder::new().nodes(["a", "b"]).edge("a", "b").build();
        let a = g.expect_node("a");
        let b = g.expect_node("b");
        let scm = GaussianScmBuilder::new(g)
            .weight(a, b, 2.0)
            .sigma(b, 0.0)
            .build();
        let mut r = rng();
        let cols = scm.sample(&mut r, 1000);
        for (bv, av) in cols[b.index()].iter().zip(&cols[a.index()]) {
            assert_close!(*bv, 2.0 * *av, 1e-12);
        }
    }
}
