//! The session registry: long-lived, fingerprint-sharded workload state.
//!
//! Every `select` request names a dataset (CSV text) and a tester
//! configuration. The registry maps the pair to a [`Workload`] holding the
//! train/test split, one shared [`EncodedTable`], and one memoizing
//! [`CiSession`] — so concurrent and repeated requests from many clients
//! share a single encode pass and a single CI-outcome dedup cache, which
//! is the whole point of running `fairsel serve` instead of one process
//! per request.
//!
//! Sharding is by *dataset fingerprint* (a stable hash of the schema and
//! every column's data) mixed with the split and tester knobs that define
//! the session's ground truth (`seed`, `train_frac`, tester, `alpha`).
//! Knobs that provably do not change CI outcomes — algorithm, worker
//! count, `max_group`, classifier — deliberately do *not* shard: a
//! `seqsel` request warms the cache for a later `grpsel` request on the
//! same data, exactly like the cross-algorithm dedup the engine property
//! tests establish.
//!
//! The registry itself is LRU-bounded (`max_datasets`), and each
//! workload's encoding caches are bounded by `cache_cap` — both with
//! eviction counters surfaced in the response telemetry.

use crate::proto::{CacheInfo, DatasetRef, MaxGroupSpec, WorkloadRequest};
use fairsel_ci::{CiTestBatch, FisherZ, GTest};
use fairsel_core::{
    render_methods_report, render_pipeline_report, run_all_methods_in, run_pipeline_batched_in,
    ClassifierKind, PipelineConfig, Problem, SelectConfig, SelectionAlgo,
};
use fairsel_engine::CiSession;
use fairsel_obs::TrackedMutex;
use fairsel_table::{csv, ColumnData, EncodedTable, Table};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Stable FNV-1a-with-finalizer hasher (the same construction the
/// testers' per-query seeds use; independent of `std`'s randomized
/// `HashMap` state, so fingerprints agree across processes and runs).
#[derive(Clone, Copy)]
pub struct StableHash(u64);

impl StableHash {
    pub fn new() -> Self {
        StableHash(0xcbf2_9ce4_8422_2325)
    }

    pub fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    pub fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    pub fn finish(self) -> u64 {
        let mut h = self.0;
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }
}

impl Default for StableHash {
    fn default() -> Self {
        Self::new()
    }
}

/// Fingerprint of a table: schema (names, roles, types) plus every
/// column's raw data. Two tables fingerprint equal iff a CI tester cannot
/// tell them apart.
pub fn fingerprint_table(table: &Table) -> u64 {
    let mut h = StableHash::new();
    h.bytes(table.schema_string().as_bytes());
    h.u64(table.n_rows() as u64);
    for col in table.columns() {
        match &col.data {
            ColumnData::Cat { codes, arity } => {
                h.u64(*arity as u64);
                for &c in codes {
                    h.u64(c as u64);
                }
            }
            ColumnData::Num(values) => {
                for &v in values {
                    h.u64(v.to_bits());
                }
            }
        }
    }
    h.finish()
}

/// The session type every workload holds: a boxed batch tester behind
/// the engine's memoizing executor.
pub type BoxedSession = CiSession<Box<dyn CiTestBatch + Send + Sync>>;

/// One resident workload: split tables, shared encoding layer, memoizing
/// session.
pub struct Workload {
    pub train: Arc<Table>,
    pub test: Table,
    pub enc: Arc<EncodedTable>,
    pub session: CiSession<Box<dyn CiTestBatch + Send + Sync>>,
    pub fingerprint: u64,
    pub sessions_served: u64,
    /// True when the row-stable split degenerated to a prefix cut
    /// ([`fairsel_table::StableSplit::fallback`]) — the prefix property
    /// does not hold then, so this workload cannot seed a warm child.
    pub split_fallback: bool,
}

struct Slot {
    state: Arc<TrackedMutex<Workload>>,
    last_used: u64,
}

/// Registry configuration.
#[derive(Clone, Copy, Debug)]
pub struct RegistryConfig {
    /// Bound on each workload's encoding/residual caches
    /// (`EncodedTable::from_arc_with_cap`).
    pub cache_cap: usize,
    /// Bound on resident dataset workloads (LRU eviction beyond it).
    pub max_datasets: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            cache_cap: fairsel_table::DEFAULT_CACHE_CAP,
            max_datasets: 16,
        }
    }
}

/// A dataset uploaded via `put`, addressable by fingerprint.
struct PutSlot {
    table: Arc<Table>,
    last_used: u64,
}

/// The fingerprint-sharded workload registry.
pub struct Registry {
    // analyze: bounded-by LRU-evicted at cfg.max_sessions by get_or_insert
    slots: TrackedMutex<HashMap<u64, Slot>>,
    /// Uploaded raw tables, keyed by dataset fingerprint — what `select`
    /// / `methods` requests with `{"fp":...}` resolve against. Bounded
    /// like the workload slots.
    // analyze: bounded-by LRU-evicted at cfg.max_puts by put_table
    puts: TrackedMutex<HashMap<u64, PutSlot>>,
    /// Append lineage: child fingerprint → parent fingerprint. When a
    /// workload for a child dataset is first requested, a resident parent
    /// workload (same tester knobs) seeds it warm — the parent session's
    /// scaffolds are *extended* over the appended rows instead of
    /// rebuilt. Unbounded by design: an entry is two u64s, and keeping
    /// lineage past put-store eviction lets a long append chain stay warm
    /// end to end.
    // analyze: bounded-by two u64s per append event; see doc comment for the retention rationale
    lineage: TrackedMutex<HashMap<u64, u64>>,
    cfg: RegistryConfig,
    tick: AtomicU64,
    requests: AtomicU64,
    evictions: AtomicU64,
    put_evictions: AtomicU64,
    warm_children: AtomicU64,
    /// Cumulative memo-ledger totals across every warm-child birth:
    /// parent outcomes re-derived by sufficient-statistic patching vs
    /// invalidated for on-demand re-issue.
    memo_patched: AtomicU64,
    memo_invalidated: AtomicU64,
}

impl Registry {
    pub fn new(cfg: RegistryConfig) -> Self {
        Self {
            slots: TrackedMutex::new("server.registry.slots", HashMap::new()),
            puts: TrackedMutex::new("server.registry.puts", HashMap::new()),
            lineage: TrackedMutex::new("server.registry.lineage", HashMap::new()),
            cfg,
            tick: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            put_evictions: AtomicU64::new(0),
            warm_children: AtomicU64::new(0),
            memo_patched: AtomicU64::new(0),
            memo_invalidated: AtomicU64::new(0),
        }
    }

    /// Resident workload count.
    pub fn resident(&self) -> usize {
        self.slots.lock().len()
    }

    /// Resident uploaded-dataset count.
    pub fn resident_puts(&self) -> usize {
        self.puts.lock().len()
    }

    /// Total workload requests served.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Workloads evicted by the LRU bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Uploaded datasets evicted by the LRU bound so far.
    pub fn put_evictions(&self) -> u64 {
        self.put_evictions.load(Ordering::Relaxed)
    }

    /// Workload sessions born warm from a parent via append lineage.
    pub fn warm_children(&self) -> u64 {
        self.warm_children.load(Ordering::Relaxed)
    }

    /// Total memoized outcomes patched in place across warm-child births.
    pub fn memo_patched(&self) -> u64 {
        self.memo_patched.load(Ordering::Relaxed)
    }

    /// Total memoized outcomes invalidated across warm-child births.
    pub fn memo_invalidated(&self) -> u64 {
        self.memo_invalidated.load(Ordering::Relaxed)
    }

    /// The recorded append parent of `child_fp`, if any.
    pub fn parent_of(&self, child_fp: u64) -> Option<u64> {
        self.lineage.lock().get(&child_fp).copied()
    }

    /// Streaming append: extend the dataset fingerprinted `fp` with a row
    /// batch, producing a *child* dataset addressable by its own
    /// fingerprint. The child is stored in the put store like any upload,
    /// and the parent→child lineage is recorded so the first workload
    /// session built on the child is born warm from a resident parent
    /// session. Returns `(child fingerprint, child row count)`.
    ///
    /// Fails clean (no state change) when the parent fingerprint is
    /// unknown or evicted, or when the batch's schema does not match —
    /// the same validation discipline as [`Table::concat`].
    pub fn append(&self, fp: u64, batch: Table) -> Result<(u64, usize), String> {
        if batch.n_rows() == 0 {
            return Err("append batch has no rows".into());
        }
        let parent = self.dataset(fp).ok_or_else(|| {
            format!(
                "unknown dataset fingerprint {fp:016x} \
                 (not uploaded, or evicted — put it again)"
            )
        })?;
        let child = parent
            .concat(&batch)
            .map_err(|e| format!("append batch rejected: {e}"))?;
        let rows = child.n_rows();
        let child_fp = self.put(child)?;
        if child_fp != fp {
            self.lineage.lock().insert(child_fp, fp);
        }
        Ok((child_fp, rows))
    }

    /// Store an uploaded dataset and return its fingerprint. Re-putting
    /// an identical table is a cheap no-op (same fingerprint, the first
    /// copy stays). The store is LRU-bounded by `max_datasets`.
    pub fn put(&self, table: Table) -> Result<u64, String> {
        if table.n_rows() < 10 {
            return Err(format!("too few rows ({})", table.n_rows()));
        }
        let fp = fingerprint_table(&table);
        let mut puts = self.puts.lock();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = puts.get_mut(&fp) {
            slot.last_used = tick;
            return Ok(fp);
        }
        while puts.len() >= self.cfg.max_datasets {
            // Tie-break equal recency ticks by fingerprint so the evicted
            // victim never depends on hash iteration order.
            // analyze: unordered-ok min over the strict total order
            // (last_used, fp) is unique, so iteration order cannot leak.
            let victim = puts
                .iter()
                .min_by_key(|(k, s)| (s.last_used, **k))
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    puts.remove(&k);
                    self.put_evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        puts.insert(
            fp,
            PutSlot {
                table: Arc::new(table),
                last_used: tick,
            },
        );
        Ok(fp)
    }

    /// Look up an uploaded dataset by fingerprint (touches its LRU slot).
    pub fn dataset(&self, fp: u64) -> Option<Arc<Table>> {
        let mut puts = self.puts.lock();
        let slot = puts.get_mut(&fp)?;
        slot.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&slot.table))
    }

    /// Resolve a workload's dataset reference to its fingerprint, plus
    /// the table itself when it traveled inline. A fingerprint reference
    /// resolves to `None` here: the table is only needed to *build* a
    /// workload session, so the put-store lookup is deferred to the
    /// session-miss path — a warm request against a resident session
    /// succeeds even after the put store evicted the raw table.
    fn resolve_fingerprint(
        &self,
        req: &WorkloadRequest,
    ) -> Result<(u64, Option<Arc<Table>>), String> {
        match &req.dataset {
            DatasetRef::Csv(text) => {
                let table = csv::from_csv_string(text).map_err(|e| format!("parsing csv: {e}"))?;
                if table.n_rows() < 10 {
                    return Err(format!("too few rows ({})", table.n_rows()));
                }
                let fp = fingerprint_table(&table);
                Ok((fp, Some(Arc::new(table))))
            }
            // `put` already validated the table (row floor included).
            DatasetRef::Fp(fp) => Ok((*fp, None)),
        }
    }

    /// Serve one `select` workload: resolve (or build) the shared session
    /// for the request's dataset + tester config, run the pipeline inside
    /// it, and return the rendered deterministic report plus telemetry.
    pub fn select(&self, req: &WorkloadRequest) -> Result<(String, String, CacheInfo), String> {
        let (fingerprint, table) = self.resolve_fingerprint(req)?;
        let key = self.workload_key(fingerprint, req);
        let state = self.get_or_insert(key, fingerprint, table, req)?;

        let mut guard = state.lock();
        let w = &mut *guard;
        let cfg = pipeline_config(req, w.train.n_rows())?;
        let train = Arc::clone(&w.train);
        let _sp = fairsel_obs::span_kv("registry.select", || {
            vec![("fingerprint", format!("{fingerprint:016x}"))]
        });
        let out = run_pipeline_batched_in(&mut w.session, &train, &w.test, &cfg);
        w.sessions_served += 1;
        self.requests.fetch_add(1, Ordering::Relaxed);
        let body = render_pipeline_report(&out, &w.train, &cfg, w.test.n_rows());
        let stats_json = out.engine.to_json();
        let enc_stats = w.session.tester().encode_cache_stats();
        let cache = CacheInfo {
            fingerprint,
            sessions_served: w.sessions_served,
            shared_hits: out.engine.cache_hits,
            encode_hits: enc_stats.hits,
            encode_misses: enc_stats.misses,
            encode_evictions: enc_stats.evictions,
            dataset_evictions: self.evictions(),
        };
        Ok((body, stats_json, cache))
    }

    /// Serve one `methods` workload — the full baseline sweep (a-only /
    /// all / seqsel / grpsel / fair-pc) — **inside** the request's shared
    /// registry session, so the sweep shares the per-dataset CI-outcome
    /// dedup (and the Z-grouped batch path) with every other request:
    /// Fair-PC's marginal layer overlaps SeqSel's ∅-subset queries, GrpSel
    /// reuses SeqSel's singleton probes, and a warm repeat issues almost
    /// nothing. Per-method telemetry in the body therefore reports
    /// post-dedup costs.
    pub fn methods(&self, req: &WorkloadRequest) -> Result<(String, String, CacheInfo), String> {
        let (fingerprint, table) = self.resolve_fingerprint(req)?;
        let key = self.workload_key(fingerprint, req);
        let state = self.get_or_insert(key, fingerprint, table, req)?;

        let mut guard = state.lock();
        let w = &mut *guard;
        let cfg = pipeline_config(req, w.train.n_rows())?;
        let train = Arc::clone(&w.train);
        let _sp = fairsel_obs::span_kv("registry.methods", || {
            vec![("fingerprint", format!("{fingerprint:016x}"))]
        });
        let outs = run_all_methods_in(&mut w.session, &train, &w.test, &cfg);
        w.sessions_served += 1;
        self.requests.fetch_add(1, Ordering::Relaxed);
        let problem = Problem::from_table(&w.train);
        let body = render_methods_report(&outs, problem.n_features());
        let stats_json = w.session.stats().to_json();
        let enc_stats = w.session.tester().encode_cache_stats();
        let cache = CacheInfo {
            fingerprint,
            sessions_served: w.sessions_served,
            shared_hits: w.session.stats().cache_hits,
            encode_hits: enc_stats.hits,
            encode_misses: enc_stats.misses,
            encode_evictions: enc_stats.evictions,
            dataset_evictions: self.evictions(),
        };
        Ok((body, stats_json, cache))
    }

    /// Session key: dataset fingerprint + the knobs that define the
    /// session's ground truth. See the module docs for what deliberately
    /// does *not* shard.
    fn workload_key(&self, fingerprint: u64, req: &WorkloadRequest) -> u64 {
        let mut h = StableHash::new();
        h.u64(fingerprint);
        h.bytes(req.tester.as_bytes());
        h.u64(req.alpha.to_bits());
        h.u64(req.train_frac.to_bits());
        h.u64(req.seed);
        h.finish()
    }

    /// Attempt to seed a child workload warm from a resident parent
    /// session recorded in the append lineage. The row-stable split's
    /// prefix property guarantees the child's train table is exactly the
    /// parent's train table followed by the appended train rows, so the
    /// parent's encodings and tester scaffolds can be *extended* over the
    /// suffix instead of rebuilt. Any missing precondition — no lineage,
    /// parent session not resident, parent built on a fallback split,
    /// tester declines extension, or no appended row landed in train —
    /// returns `None` and the caller builds cold (always correct, just
    /// slower).
    fn try_warm_child(
        &self,
        child_fp: u64,
        child_train: &Arc<Table>,
        req: &WorkloadRequest,
    ) -> Option<(Arc<EncodedTable>, BoxedSession)> {
        let parent_fp = self.parent_of(child_fp)?;
        let parent_key = self.workload_key(parent_fp, req);
        let parent_state = {
            let slots = self.slots.lock();
            Arc::clone(&slots.get(&parent_key)?.state)
        };
        let pw = parent_state.lock();
        if pw.split_fallback {
            return None;
        }
        let n_parent = pw.train.n_rows();
        let n_child = child_train.n_rows();
        if n_child <= n_parent {
            // No appended row landed on the train side (or something is
            // inconsistent) — nothing to extend over.
            return None;
        }
        let suffix: Vec<usize> = (n_parent..n_child).collect();
        let batch = child_train.take_rows(&suffix);
        let enc = Arc::new(pw.enc.extend(&batch).ok()?);
        let session = pw.session.extended_over(Arc::clone(&enc))?;
        // The child's birth stats carry the memo ledger: how many of the
        // parent's memoized outcomes were re-derived in O(batch) from
        // patched sufficient statistics vs invalidated for re-issue.
        let (patched, invalidated) = {
            let s = session.stats();
            (s.memo_patched, s.memo_invalidated)
        };
        self.memo_patched.fetch_add(patched, Ordering::Relaxed);
        self.memo_invalidated
            .fetch_add(invalidated, Ordering::Relaxed);
        let _sp = fairsel_obs::span_kv("session.warm_child", || {
            vec![
                ("fingerprint", format!("{child_fp:016x}")),
                ("parent", format!("{parent_fp:016x}")),
                ("appended_train_rows", (n_child - n_parent).to_string()),
                ("memo_patched", patched.to_string()),
                ("memo_invalidated", invalidated.to_string()),
            ]
        });
        Some((enc, session))
    }

    fn get_or_insert(
        &self,
        key: u64,
        fingerprint: u64,
        table: Option<Arc<Table>>,
        req: &WorkloadRequest,
    ) -> Result<Arc<TrackedMutex<Workload>>, String> {
        {
            let mut slots = self.slots.lock();
            if let Some(slot) = slots.get_mut(&key) {
                slot.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&slot.state));
            }
        }
        // Session miss: only now is the raw table required — resolve a
        // fingerprint reference against the put store (the warm path
        // above never needs it, so an evicted upload does not invalidate
        // a resident session).
        let table = match table {
            Some(t) => t,
            None => self.dataset(fingerprint).ok_or_else(|| {
                format!(
                    "unknown dataset fingerprint {fingerprint:016x} \
                     (not uploaded, or evicted — put it again)"
                )
            })?,
        };
        // Cold path: build the workload with NO lock held — the train/test
        // split copies every column, which must not stall warm requests
        // for other datasets. Two racing cold requests may both build;
        // the publish step below keeps the first and discards the other
        // (the state is a pure function of the request, so either copy is
        // correct).
        let _sp = fairsel_obs::span_kv("session.build", || {
            vec![
                ("fingerprint", format!("{fingerprint:016x}")),
                ("rows", table.n_rows().to_string()),
            ]
        });
        // Row-stable split: membership depends only on (seed, row index),
        // so a dataset extended by append splits into exactly the parent's
        // split plus the new rows — the prefix property the warm-child
        // path below relies on.
        let split = table.split_rows_stable(req.seed, req.train_frac);
        let test = split.test;
        let mut train = Arc::new(split.train);
        let warm = if split.fallback {
            None
        } else {
            self.try_warm_child(fingerprint, &train, req)
        };
        let (enc, session) = match warm {
            Some((enc, session)) => {
                self.warm_children.fetch_add(1, Ordering::Relaxed);
                // The extended layer already holds the concatenated train
                // table (bit-identical to `train` by the prefix property);
                // share it instead of keeping two copies resident.
                train = Arc::clone(enc.table_arc());
                (enc, session)
            }
            None => {
                let enc = Arc::new(EncodedTable::from_arc_with_cap(
                    Arc::clone(&train),
                    self.cfg.cache_cap,
                ));
                let tester: Box<dyn CiTestBatch + Send + Sync> = match req.tester.as_str() {
                    "gtest" => Box::new(GTest::over(Arc::clone(&enc), req.alpha)),
                    "fisherz" => Box::new(FisherZ::over(Arc::clone(&enc), req.alpha)),
                    other => return Err(format!("unknown tester: {other} (gtest|fisherz)")),
                };
                (enc, CiSession::new(tester))
            }
        };
        let state = Arc::new(TrackedMutex::new(
            "server.registry.workload",
            Workload {
                train,
                test,
                enc,
                session,
                fingerprint,
                sessions_served: 0,
                split_fallback: split.fallback,
            },
        ));

        let mut slots = self.slots.lock();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = slots.get_mut(&key) {
            // Lost the build race: keep the published workload (it may
            // already hold memoized outcomes).
            slot.last_used = tick;
            return Ok(Arc::clone(&slot.state));
        }
        while slots.len() >= self.cfg.max_datasets {
            // Tie-break equal recency ticks by key so the evicted victim
            // never depends on hash iteration order.
            // analyze: unordered-ok min over the strict total order
            // (last_used, key) is unique, so iteration order cannot leak.
            let victim = slots
                .iter()
                .min_by_key(|(k, s)| (s.last_used, **k))
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    slots.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        slots.insert(
            key,
            Slot {
                state: Arc::clone(&state),
                last_used: tick,
            },
        );
        Ok(state)
    }
}

/// Translate a wire workload into the pipeline config a local CLI run
/// would build — field for field, so outputs are byte-identical.
pub fn pipeline_config(req: &WorkloadRequest, train_rows: usize) -> Result<PipelineConfig, String> {
    let algo = match req.algo.as_str() {
        "seqsel" => SelectionAlgo::SeqSel,
        "grpsel" => SelectionAlgo::GrpSel {
            seed: Some(req.seed),
        },
        other => return Err(format!("unknown algo: {other}")),
    };
    let classifier = ClassifierKind::parse(&req.classifier)
        .ok_or_else(|| format!("unknown classifier: {}", req.classifier))?;
    let max_group = match req.max_group {
        MaxGroupSpec::None => None,
        MaxGroupSpec::Auto => Some(SelectConfig::auto_max_group(train_rows)),
        MaxGroupSpec::Width(w) => Some(w),
    };
    Ok(PipelineConfig {
        select: SelectConfig {
            max_group,
            speculate: req.speculate,
            ..SelectConfig::default()
        },
        algo,
        classifier,
        workers: req.workers.max(1),
        model_seed: req.seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_table::{Column, Role};

    fn small_table(rows: usize, flip: bool) -> Table {
        Table::new(vec![
            Column::cat(
                "s",
                Role::Sensitive,
                (0..rows).map(|i| (i % 2) as u32).collect(),
                2,
            ),
            Column::cat(
                "x",
                Role::Feature,
                (0..rows)
                    .map(|i| ((i / 2 + usize::from(flip)) % 2) as u32)
                    .collect(),
                2,
            ),
            Column::cat(
                "y",
                Role::Target,
                (0..rows).map(|i| ((i / 4) % 2) as u32).collect(),
                2,
            ),
        ])
        .unwrap()
    }

    #[test]
    fn fingerprint_is_stable_and_data_sensitive() {
        let a = small_table(64, false);
        let b = small_table(64, false);
        let c = small_table(64, true);
        assert_eq!(fingerprint_table(&a), fingerprint_table(&b));
        assert_ne!(fingerprint_table(&a), fingerprint_table(&c));
        // Row count changes fingerprints too.
        assert_ne!(
            fingerprint_table(&a),
            fingerprint_table(&small_table(60, false))
        );
    }

    #[test]
    fn repeated_select_shares_session_and_reports_hits() {
        let reg = Registry::new(RegistryConfig::default());
        let req = WorkloadRequest::with_csv(csv::to_csv_string(&small_table(200, false)));
        let (body1, _, cache1) = reg.select(&req).unwrap();
        assert_eq!(cache1.sessions_served, 1);
        let (body2, _, cache2) = reg.select(&req).unwrap();
        assert_eq!(body1, body2, "warm request must be byte-identical");
        assert_eq!(cache2.sessions_served, 2);
        assert!(
            cache2.shared_hits > cache1.shared_hits,
            "warm request must hit the shared memo ({} !> {})",
            cache2.shared_hits,
            cache1.shared_hits
        );
        assert_eq!(cache1.fingerprint, cache2.fingerprint);
        assert_eq!(reg.requests(), 2);
        assert_eq!(reg.resident(), 1);
    }

    #[test]
    fn different_datasets_shard_and_evict_lru() {
        let reg = Registry::new(RegistryConfig {
            max_datasets: 2,
            ..Default::default()
        });
        for flip in [false, true] {
            let req = WorkloadRequest::with_csv(csv::to_csv_string(&small_table(
                120 + usize::from(flip) * 4,
                flip,
            )));
            reg.select(&req).unwrap();
        }
        assert_eq!(reg.resident(), 2);
        // A third dataset evicts the least-recently-used entry.
        let req = WorkloadRequest::with_csv(csv::to_csv_string(&small_table(240, false)));
        reg.select(&req).unwrap();
        assert_eq!(reg.resident(), 2);
        assert_eq!(reg.evictions(), 1);
    }

    #[test]
    fn algo_change_shares_the_session() {
        let reg = Registry::new(RegistryConfig::default());
        let base = WorkloadRequest {
            dataset: DatasetRef::Csv(csv::to_csv_string(&small_table(200, false))),
            algo: "grpsel".into(),
            ..Default::default()
        };
        reg.select(&base).unwrap();
        let seq = WorkloadRequest {
            algo: "seqsel".into(),
            ..base
        };
        let (_, _, cache) = reg.select(&seq).unwrap();
        assert_eq!(reg.resident(), 1, "algo must not shard the registry");
        assert!(cache.shared_hits > 0, "cross-algorithm dedup");
    }

    #[test]
    fn bad_requests_are_rejected() {
        let reg = Registry::new(RegistryConfig::default());
        let mut req = WorkloadRequest::with_csv("not a csv");
        assert!(reg.select(&req).is_err());
        req.dataset = DatasetRef::Csv(csv::to_csv_string(&small_table(200, false)));
        req.tester = "psychic".into();
        assert!(reg.select(&req).is_err());
        req.tester = "gtest".into();
        req.algo = "bogus".into();
        assert!(reg.select(&req).is_err());
    }

    /// A `put` followed by a fingerprint-addressed `select` is
    /// byte-identical to the same workload shipped as inline CSV — and
    /// both land in the *same* workload session, so either spelling
    /// warms the other.
    #[test]
    fn put_then_select_by_fp_matches_inline_csv() {
        let reg = Registry::new(RegistryConfig::default());
        let table = small_table(200, false);
        let csv_req = WorkloadRequest::with_csv(csv::to_csv_string(&table));
        let (csv_body, _, csv_cache) = reg.select(&csv_req).unwrap();

        let fp = reg.put(table).unwrap();
        assert_eq!(
            fp, csv_cache.fingerprint,
            "codec upload and CSV parse must fingerprint identically"
        );
        let fp_req = WorkloadRequest {
            dataset: DatasetRef::Fp(fp),
            ..Default::default()
        };
        let (fp_body, _, fp_cache) = reg.select(&fp_req).unwrap();
        assert_eq!(csv_body, fp_body, "fp-addressed select must be identical");
        assert_eq!(fp_cache.sessions_served, 2, "same session serves both");
        assert!(
            fp_cache.shared_hits > csv_cache.shared_hits,
            "the fp request is warm: the CSV request already paid the tests"
        );
        assert_eq!(reg.resident(), 1);
        assert_eq!(reg.resident_puts(), 1);
    }

    /// Regression: the put store and the workload slots evict
    /// independently; a warm fp-addressed request must be answered from
    /// the resident session even after the raw upload was evicted — the
    /// table is only needed to *build* a session, never to reuse one.
    #[test]
    fn warm_fp_request_survives_put_store_eviction() {
        let reg = Registry::new(RegistryConfig {
            max_datasets: 2,
            ..Default::default()
        });
        let fp_a = reg.put(small_table(200, false)).unwrap();
        let fp_req = |fp| WorkloadRequest {
            dataset: DatasetRef::Fp(fp),
            ..Default::default()
        };
        let (body_a, _, _) = reg.select(&fp_req(fp_a)).unwrap();

        // Evict A's upload (B and C fill the put store) …
        reg.put(small_table(124, true)).unwrap();
        reg.put(small_table(240, false)).unwrap();
        assert!(reg.dataset(fp_a).is_none(), "A's upload must be evicted");

        // … yet the warm request still succeeds, byte-identically, from
        // the resident session.
        let (body_warm, _, cache) = reg.select(&fp_req(fp_a)).unwrap();
        assert_eq!(body_a, body_warm);
        assert_eq!(cache.sessions_served, 2);
        assert!(cache.shared_hits > 0, "served from the warm session");

        // A *different* workload key on the evicted dataset (new split
        // seed ⇒ new session) genuinely needs the table and fails clean.
        let cold = WorkloadRequest {
            dataset: DatasetRef::Fp(fp_a),
            seed: 99,
            ..Default::default()
        };
        let err = reg.select(&cold).unwrap_err();
        assert!(err.contains("unknown dataset fingerprint"), "{err}");
    }

    #[test]
    fn unknown_fingerprint_is_a_clean_error() {
        let reg = Registry::new(RegistryConfig::default());
        let req = WorkloadRequest {
            dataset: DatasetRef::Fp(0xdead),
            ..Default::default()
        };
        let err = reg.select(&req).unwrap_err();
        assert!(err.contains("unknown dataset fingerprint"), "{err}");
    }

    /// The streaming-append tentpole, end to end at the registry layer:
    /// `put` a parent, warm its session, `append` a batch, and the first
    /// select on the child fingerprint is born warm from the parent's
    /// session — byte-identical to a cold run on the concatenated table.
    #[test]
    fn append_child_select_is_warm_and_byte_identical() {
        let reg = Registry::new(RegistryConfig::default());
        let parent = small_table(200, false);
        let batch = small_table(48, false);
        let concat = parent.concat(&batch).unwrap();

        let fp = reg.put(parent).unwrap();
        let fp_req = |fp| WorkloadRequest {
            dataset: DatasetRef::Fp(fp),
            ..Default::default()
        };
        // Warm the parent session so the child has something to extend.
        reg.select(&fp_req(fp)).unwrap();

        let (child_fp, rows) = reg.append(fp, batch).unwrap();
        assert_eq!(rows, 248);
        assert_ne!(child_fp, fp);
        assert_eq!(reg.parent_of(child_fp), Some(fp));
        assert_eq!(reg.warm_children(), 0, "no child session built yet");

        let (warm_body, warm_stats, warm_cache) = reg.select(&fp_req(child_fp)).unwrap();
        assert_eq!(warm_cache.fingerprint, child_fp);
        assert_eq!(
            reg.warm_children(),
            1,
            "child session must be born warm from the lineage parent"
        );
        assert!(
            warm_stats.contains("\"append_rows\":")
                && !warm_stats.contains("\"append_rows\":0,")
                && !warm_stats.contains("\"extended_scaffolds\":0,"),
            "engine stats must surface a nonzero append ledger: {warm_stats}"
        );
        // The memo ledger too: the warm child patched parent outcomes in
        // place (G-test sufficient statistics re-derived over the batch)
        // and the ledger conserves — patched + invalidated == before.
        assert!(
            warm_stats.contains("\"memoized_before\":")
                && warm_stats.contains("\"memo_patched\":")
                && !warm_stats.contains("\"memo_patched\":0,")
                && !warm_stats.contains("\"memo_patch_hits\":0,"),
            "warm child must patch parent memos in place: {warm_stats}"
        );

        // Ground truth: a cold registry run on the concatenated table.
        let cold = Registry::new(RegistryConfig::default());
        let (cold_body, _, cold_cache) = cold
            .select(&WorkloadRequest::with_csv(csv::to_csv_string(&concat)))
            .unwrap();
        assert_eq!(
            cold_cache.fingerprint, child_fp,
            "concat fingerprints as the child"
        );
        assert_eq!(
            warm_body, cold_body,
            "warm child select must be byte-identical to the cold run"
        );
        assert_eq!(cold.warm_children(), 0);
    }

    /// Appending to a fingerprint that was never uploaded — or whose
    /// upload the LRU already evicted — is a clean structured error, not
    /// a panic; a schema-mismatched batch is rejected with the concat
    /// validator's message.
    #[test]
    fn append_failure_modes_are_clean_errors() {
        let reg = Registry::new(RegistryConfig {
            max_datasets: 2,
            ..Default::default()
        });
        let err = reg.append(0xdead, small_table(40, false)).unwrap_err();
        assert!(err.contains("unknown dataset fingerprint"), "{err}");

        let fp_a = reg.put(small_table(120, false)).unwrap();
        // Evict A's upload, then append to it.
        reg.put(small_table(124, true)).unwrap();
        reg.put(small_table(240, false)).unwrap();
        assert!(reg.dataset(fp_a).is_none(), "A must be evicted");
        let err = reg.append(fp_a, small_table(40, false)).unwrap_err();
        assert!(err.contains("unknown dataset fingerprint"), "{err}");

        // Schema mismatch (missing column) fails concat validation.
        let fp_b = reg.put(small_table(120, false)).unwrap();
        let skinny = Table::new(vec![Column::cat(
            "s",
            Role::Sensitive,
            (0..20).map(|i| (i % 2) as u32).collect(),
            2,
        )])
        .unwrap();
        let err = reg.append(fp_b, skinny).unwrap_err();
        assert!(err.contains("append batch rejected"), "{err}");

        // Empty batches are refused before touching the store.
        let empty = Table::new(vec![Column::cat("s", Role::Sensitive, vec![], 2)]).unwrap();
        let err = reg.append(fp_b, empty).unwrap_err();
        assert!(err.contains("no rows"), "{err}");
    }

    #[test]
    fn put_store_is_lru_bounded() {
        let reg = Registry::new(RegistryConfig {
            max_datasets: 2,
            ..Default::default()
        });
        let fp_a = reg.put(small_table(120, false)).unwrap();
        let fp_b = reg.put(small_table(124, true)).unwrap();
        // Re-putting an identical table dedups on fingerprint.
        assert_eq!(reg.put(small_table(120, false)).unwrap(), fp_a);
        assert_eq!(reg.resident_puts(), 2);
        assert_eq!(reg.put_evictions(), 0);
        // Touch A so B is the LRU victim when C arrives.
        assert!(reg.dataset(fp_a).is_some());
        let fp_c = reg.put(small_table(240, false)).unwrap();
        assert_eq!(reg.resident_puts(), 2);
        assert_eq!(reg.put_evictions(), 1);
        assert!(reg.dataset(fp_b).is_none(), "B was evicted");
        assert!(reg.dataset(fp_a).is_some() && reg.dataset(fp_c).is_some());
        // Undersized uploads are rejected before they occupy a slot.
        assert!(reg.put(small_table(4, false)).is_err());
    }
}
