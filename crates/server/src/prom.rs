//! Prometheus text exposition for the `stats` response.
//!
//! The server's `stats` JSON already carries everything a scraper needs —
//! scalar counters/gauges plus the named latency histograms. This module
//! renders that document into the Prometheus text format (version 0.0.4):
//! scalars become `fairsel_<name>` samples, and each histogram named
//! `base/label` becomes a `fairsel_<base>_ms` histogram family with
//! cumulative `_bucket{le="..."}` lines (edges converted from µs to ms),
//! a `+Inf` bucket, `_sum`, and `_count`. The label key is derived from
//! the base: `request_wall` → `cmd`, `engine_batch` → `kind`, anything
//! else → `tag`; a bare name (e.g. `queue_wait`) renders unlabeled.
//!
//! Rendering is a pure function of the JSON, so the CLI applies it to a
//! *remote* server's stats without needing that server to speak a second
//! protocol — `fairsel stats --remote ADDR --prom`.

use crate::json::Json;

/// Render a `stats` response object as Prometheus text.
///
/// Unknown or non-numeric fields are skipped, so the renderer stays
/// forward-compatible with new telemetry. Histogram bucket counts in the
/// JSON are per-bucket; this function accumulates them into the cumulative
/// counts the Prometheus format requires.
pub fn render_prom(stats: &Json) -> String {
    let mut out = String::new();
    if let Json::Obj(pairs) = stats {
        for (k, v) in pairs {
            match v {
                Json::Num(n) => {
                    out.push_str(&format!("fairsel_{k} {}\n", fmt_num(*n)));
                }
                Json::Bool(b) => {
                    out.push_str(&format!("fairsel_{k} {}\n", u8::from(*b)));
                }
                _ => {}
            }
        }
    }
    if let Some(Json::Obj(hists)) = stats.get("histograms") {
        let mut last_base = String::new();
        for (name, h) in hists {
            render_histogram(&mut out, name, h, &mut last_base);
        }
    }
    out
}

fn render_histogram(out: &mut String, name: &str, h: &Json, last_base: &mut String) {
    let (base, label) = match name.split_once('/') {
        Some((b, l)) => (b, Some(l)),
        None => (name, None),
    };
    let metric = format!("fairsel_{base}_ms");
    if base != last_base {
        out.push_str(&format!("# TYPE {metric} histogram\n"));
        *last_base = base.to_owned();
    }
    let label_key = match base {
        "request_wall" => "cmd",
        "engine_batch" => "kind",
        _ => "tag",
    };
    let labels = |le: Option<&str>| -> String {
        let mut parts = Vec::new();
        if let Some(l) = label {
            parts.push(format!("{label_key}=\"{l}\""));
        }
        if let Some(le) = le {
            parts.push(format!("le=\"{le}\""));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    };
    let mut cumulative = 0u64;
    if let Some(Json::Arr(buckets)) = h.get("buckets") {
        for b in buckets {
            let Json::Arr(pair) = b else { continue };
            let (Some(Json::Num(le_us)), Some(Json::Num(c))) = (pair.first(), pair.get(1)) else {
                continue;
            };
            cumulative += *c as u64;
            let le_ms = fmt_num(le_us / 1e3);
            out.push_str(&format!(
                "{metric}_bucket{} {cumulative}\n",
                labels(Some(&le_ms))
            ));
        }
    }
    let count = h.get_num("count").unwrap_or(0.0) as u64;
    out.push_str(&format!(
        "{metric}_bucket{} {count}\n",
        labels(Some("+Inf"))
    ));
    let sum_ms = h.get_num("sum_us").unwrap_or(0.0) / 1e3;
    out.push_str(&format!(
        "{metric}_sum{} {}\n",
        labels(None),
        fmt_num(sum_ms)
    ));
    out.push_str(&format!("{metric}_count{} {count}\n", labels(None)));
}

/// Integers render without a fraction (Prometheus accepts either, but
/// `3` reads better than `3.0` for counters); floats keep full precision.
fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(buckets: &[(u64, u64)]) -> Json {
        let count: u64 = buckets.iter().map(|(_, c)| c).sum();
        let sum_us: u64 = buckets.iter().map(|(le, c)| le * c).sum();
        Json::obj(vec![
            ("count", Json::Num(count as f64)),
            ("sum_us", Json::Num(sum_us as f64)),
            (
                "max_us",
                Json::Num(buckets.last().map_or(0, |(le, _)| *le) as f64),
            ),
            (
                "buckets",
                Json::Arr(
                    buckets
                        .iter()
                        .map(|(le, c)| Json::Arr(vec![Json::Num(*le as f64), Json::Num(*c as f64)]))
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn request_wall_renders_cumulative_cmd_labeled_buckets() {
        let stats = Json::obj(vec![(
            "histograms",
            Json::obj(vec![("request_wall/select", hist(&[(127, 3), (1023, 2)]))]),
        )]);
        let text = render_prom(&stats);
        assert!(text.contains("# TYPE fairsel_request_wall_ms histogram"));
        // 127 µs = 0.127 ms; cumulative counts: 3 then 3+2=5.
        assert!(text.contains("fairsel_request_wall_ms_bucket{cmd=\"select\",le=\"0.127\"} 3"));
        assert!(text.contains("fairsel_request_wall_ms_bucket{cmd=\"select\",le=\"1.023\"} 5"));
        assert!(text.contains("fairsel_request_wall_ms_bucket{cmd=\"select\",le=\"+Inf\"} 5"));
        assert!(text.contains("fairsel_request_wall_ms_count{cmd=\"select\"} 5"));
        // sum = 3*127 + 2*1023 = 2427 µs = 2.427 ms
        assert!(text.contains("fairsel_request_wall_ms_sum{cmd=\"select\"} 2.427"));
    }

    #[test]
    fn bare_names_render_unlabeled_and_engine_batch_uses_kind() {
        let stats = Json::obj(vec![(
            "histograms",
            Json::obj(vec![
                ("engine_batch/grouped", hist(&[(63, 4)])),
                ("queue_wait", hist(&[(15, 1)])),
            ]),
        )]);
        let text = render_prom(&stats);
        assert!(text.contains("fairsel_engine_batch_ms_bucket{kind=\"grouped\",le=\"0.063\"} 4"));
        assert!(text.contains("fairsel_queue_wait_ms_bucket{le=\"0.015\"} 1"));
        assert!(text.contains("fairsel_queue_wait_ms_sum 0.015"));
        assert!(text.contains("fairsel_queue_wait_ms_count 1"));
    }

    #[test]
    fn type_line_emitted_once_per_family() {
        let stats = Json::obj(vec![(
            "histograms",
            Json::obj(vec![
                ("request_wall/all", hist(&[(1, 1)])),
                ("request_wall/select", hist(&[(1, 1)])),
            ]),
        )]);
        let text = render_prom(&stats);
        let type_lines = text
            .lines()
            .filter(|l| l.starts_with("# TYPE fairsel_request_wall_ms"))
            .count();
        assert_eq!(type_lines, 1);
    }

    #[test]
    fn scalars_become_samples_and_bools_become_01() {
        let stats = Json::obj(vec![
            ("requests_handled", Json::Num(42.0)),
            ("request_wall_p95_ms", Json::Num(1.5)),
            ("trace_enabled", Json::Bool(true)),
            ("ignored", Json::Str("text".into())),
        ]);
        let text = render_prom(&stats);
        assert!(text.contains("fairsel_requests_handled 42\n"));
        assert!(text.contains("fairsel_request_wall_p95_ms 1.5\n"));
        assert!(text.contains("fairsel_trace_enabled 1\n"));
        assert!(!text.contains("ignored"));
    }

    #[test]
    fn empty_histogram_still_emits_inf_sum_count() {
        let stats = Json::obj(vec![(
            "histograms",
            Json::obj(vec![("request_wall/ping", hist(&[]))]),
        )]);
        let text = render_prom(&stats);
        assert!(text.contains("fairsel_request_wall_ms_bucket{cmd=\"ping\",le=\"+Inf\"} 0"));
        assert!(text.contains("fairsel_request_wall_ms_count{cmd=\"ping\"} 0"));
    }
}
