//! The TCP server and the one-shot client.
//!
//! `fairsel serve` runs a **bounded acceptor**: a fixed pool of handler
//! threads (`--conn-workers`, default `max(4, cores)`) pulls accepted
//! sockets from a queue, and a hard admission cap (`--max-conns`,
//! default 2 × the pool) sheds every connection past it with a
//! structured `busy` error the moment it is accepted. Admitted
//! connections may briefly wait for a free handler — a bounded burst
//! buffer of at most `max_conns - conn_workers` sockets — but nothing
//! ever queues past the cap, and the shed client learns immediately
//! instead of hanging. Each admitted connection may issue any number of
//! length-prefixed JSON requests (see [`crate::proto`]); all workload
//! state lives in the shared [`Registry`], so every connection — and
//! every request within one — sees the same fingerprint-sharded
//! sessions.
//!
//! Shutdown is a graceful drain: stop accepting, finish in-flight
//! requests (each handler closes its connection after the request it is
//! currently serving), then join the pool. Persistent accept errors
//! (e.g. EMFILE under fd exhaustion) back off exponentially instead of
//! busy-spinning, and a consecutive-error cap turns a dead listener into
//! a clean error exit.

use crate::json::Json;
use crate::proto::{read_frame, read_json, write_json, Request, Response};
use crate::registry::{Registry, RegistryConfig};
use fairsel_obs::TrackedMutex;
use fairsel_obs::{CompletedSpan, HistSnapshot, Histogram};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

/// Per-connection I/O timeout: a stalled client cannot pin a handler
/// thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(120);

/// Consecutive accept failures tolerated before the accept loop gives up
/// and exits with the error (a listener that only ever errors is dead;
/// spinning on it burns a core forever).
const MAX_CONSECUTIVE_ACCEPT_ERRORS: u32 = 64;

/// Default handler-pool size: `max(4, cores)`.
pub fn default_conn_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(4)
}

/// Bounded backoff before retrying a failed `accept`: exponential from
/// 1 ms, capped at 128 ms; `None` once [`MAX_CONSECUTIVE_ACCEPT_ERRORS`]
/// is exceeded (caller must exit the loop). `consecutive` is 1-based.
fn accept_backoff(consecutive: u32) -> Option<Duration> {
    if consecutive > MAX_CONSECUTIVE_ACCEPT_ERRORS {
        return None;
    }
    let exp = consecutive.saturating_sub(1).min(7);
    Some(Duration::from_millis(1u64 << exp))
}

/// The address the server can reach *itself* at. Binding `0.0.0.0:p` (or
/// `[::]:p`) yields an unspecified local address; connecting to it is
/// platform-dependent (it fails outright on some systems), so the
/// shutdown wake-up and the handle's control requests go to the loopback
/// of the same family instead.
fn self_addr(bound: &SocketAddr) -> SocketAddr {
    if bound.ip().is_unspecified() {
        let ip: IpAddr = match bound {
            SocketAddr::V4(_) => Ipv4Addr::LOCALHOST.into(),
            SocketAddr::V6(_) => Ipv6Addr::LOCALHOST.into(),
        };
        SocketAddr::new(ip, bound.port())
    } else {
        *bound
    }
}

/// Server configuration (see [`RegistryConfig`] for the cache knobs).
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    pub registry: RegistryConfig,
    /// Handler threads serving admitted connections; `0` means
    /// [`default_conn_workers`].
    pub conn_workers: usize,
    /// Hard cap on concurrently admitted connections; one past the cap
    /// is shed with [`Response::Busy`]. `0` means twice the handler
    /// pool — every admitted connection is at worst one handler
    /// turnaround away from service, so the cap never degenerates into
    /// a long silent queue.
    pub max_conns: usize,
    /// Enable the process-wide span sink at bind time, so
    /// `{"cmd":"trace"}` returns request/engine spans. On by default;
    /// binding never *disables* an already-enabled sink (selections and
    /// counters are byte-identical either way — tracing only records
    /// timing). Latency histograms are exact counters and always on.
    pub trace_spans: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            registry: RegistryConfig::default(),
            conn_workers: 0,
            max_conns: 0,
            trace_spans: true,
        }
    }
}

/// Accepted sockets waiting for a handler, each stamped with its accept
/// time so queue wait (accept → handler pickup) is measured separately
/// from handler time.
struct ConnQueue {
    // analyze: bounded-by admission cap max_conns sheds before enqueue
    queue: TrackedMutex<VecDeque<(TcpStream, Instant)>>,
    ready: Condvar,
}

/// Request-latency histograms: one per command, one aggregate, and the
/// admission queue wait. All values are recorded in microseconds;
/// exposition converts to ms. Owned by the server (not the process-wide
/// registry) so concurrent servers in one process don't mix counts.
struct CmdHists {
    select: Histogram,
    methods: Histogram,
    put: Histogram,
    append: Histogram,
    stats: Histogram,
    trace: Histogram,
    ping: Histogram,
    shutdown: Histogram,
    error: Histogram,
    all: Histogram,
    queue_wait: Histogram,
}

impl CmdHists {
    fn new() -> Self {
        Self {
            select: Histogram::new(),
            methods: Histogram::new(),
            put: Histogram::new(),
            append: Histogram::new(),
            stats: Histogram::new(),
            trace: Histogram::new(),
            ping: Histogram::new(),
            shutdown: Histogram::new(),
            error: Histogram::new(),
            all: Histogram::new(),
            queue_wait: Histogram::new(),
        }
    }

    fn for_cmd(&self, cmd: &str) -> &Histogram {
        match cmd {
            "select" => &self.select,
            "methods" => &self.methods,
            "put" => &self.put,
            "append" => &self.append,
            "stats" => &self.stats,
            "trace" => &self.trace,
            "ping" => &self.ping,
            "shutdown" => &self.shutdown,
            _ => &self.error,
        }
    }

    /// Every histogram with its exposition name (`base/label`; the
    /// Prometheus renderer maps the label to `{cmd="..."}`).
    fn named(&self) -> [(&'static str, &Histogram); 11] {
        [
            ("request_wall/select", &self.select),
            ("request_wall/methods", &self.methods),
            ("request_wall/put", &self.put),
            ("request_wall/append", &self.append),
            ("request_wall/stats", &self.stats),
            ("request_wall/trace", &self.trace),
            ("request_wall/ping", &self.ping),
            ("request_wall/shutdown", &self.shutdown),
            ("request_wall/error", &self.error),
            ("request_wall/all", &self.all),
            ("queue_wait", &self.queue_wait),
        ]
    }
}

struct ServerState {
    registry: Registry,
    stop: AtomicBool,
    addr: SocketAddr,
    conns: ConnQueue,
    max_conns: u64,
    /// Admitted connections not yet finished (queued or being served).
    active_conns: AtomicU64,
    /// Connections refused by the admission cap.
    shed_conns: AtomicU64,
    /// Connections admitted since startup.
    accepted_conns: AtomicU64,
    /// Request frames handled (every command, including ping/stats).
    requests_handled: AtomicU64,
    /// Cumulative request handling wall time, microseconds.
    request_wall_us: AtomicU64,
    /// Cumulative admission queue wait (accept → handler pickup), µs.
    queue_wait_us: AtomicU64,
    /// Per-command and queue-wait latency distributions.
    hists: CmdHists,
    /// Bytes read from / written to clients (frame headers included).
    bytes_rx: AtomicU64,
    bytes_tx: AtomicU64,
    /// Duplicated handles of connections currently being served, so the
    /// drain can wake handlers parked in `read` on idle keep-alive
    /// clients (shut the read side ⇒ EOF) instead of waiting out
    /// [`IO_TIMEOUT`]. Keyed by a serial id; entries live exactly as
    /// long as `handle_connection` runs.
    // analyze: bounded-by at most conn_workers live entries; removed when the handler returns
    serving: TrackedMutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

/// A [`Read`]+[`Write`] view of a connection that feeds the server-wide
/// byte counters — `bytes_rx`/`bytes_tx` in `stats` measure real traffic,
/// frame headers included.
struct Metered<'a> {
    stream: &'a TcpStream,
    state: &'a ServerState,
}

impl Read for Metered<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.stream.read(buf)?;
        self.state.bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

impl Write for Metered<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.stream.write(buf)?;
        self.state.bytes_tx.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    conn_workers: usize,
}

impl Server {
    /// Bind an address (`127.0.0.1:0` picks an ephemeral port — how tests
    /// and benches run hermetically).
    pub fn bind(addr: &str, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let conn_workers = if cfg.conn_workers == 0 {
            default_conn_workers()
        } else {
            cfg.conn_workers
        };
        let max_conns = if cfg.max_conns == 0 {
            conn_workers * 2
        } else {
            cfg.max_conns
        };
        if cfg.trace_spans {
            fairsel_obs::set_enabled(true);
        }
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                registry: Registry::new(cfg.registry),
                stop: AtomicBool::new(false),
                addr,
                conns: ConnQueue {
                    queue: TrackedMutex::new("server.conn_queue", VecDeque::new()),
                    ready: Condvar::new(),
                },
                max_conns: max_conns.max(1) as u64,
                active_conns: AtomicU64::new(0),
                shed_conns: AtomicU64::new(0),
                accepted_conns: AtomicU64::new(0),
                requests_handled: AtomicU64::new(0),
                request_wall_us: AtomicU64::new(0),
                queue_wait_us: AtomicU64::new(0),
                hists: CmdHists::new(),
                bytes_rx: AtomicU64::new(0),
                bytes_tx: AtomicU64::new(0),
                serving: TrackedMutex::new("server.serving", HashMap::new()),
                next_conn_id: AtomicU64::new(0),
            }),
            conn_workers,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The effective handler-pool size (after defaulting).
    pub fn conn_workers(&self) -> usize {
        self.conn_workers
    }

    /// The effective admission cap (after defaulting).
    pub fn max_conns(&self) -> usize {
        self.state.max_conns as usize
    }

    /// Accept-and-dispatch loop; returns after a `shutdown` request has
    /// drained, or with an error after persistent accept failures.
    pub fn run(self) -> io::Result<()> {
        let handlers: Vec<_> = (0..self.conn_workers)
            .map(|_| {
                let state = Arc::clone(&self.state);
                std::thread::spawn(move || handler_loop(&state))
            })
            .collect();

        let mut accept_result = Ok(());
        let mut consecutive_errors = 0u32;
        for stream in self.listener.incoming() {
            if self.state.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => {
                    consecutive_errors = 0;
                    s
                }
                Err(e) => {
                    consecutive_errors += 1;
                    match accept_backoff(consecutive_errors) {
                        Some(delay) => {
                            std::thread::sleep(delay);
                            continue;
                        }
                        None => {
                            // The listener is persistently broken; stop
                            // serving rather than spin at 100% CPU.
                            self.state.stop.store(true, Ordering::SeqCst);
                            accept_result = Err(e);
                            break;
                        }
                    }
                }
            };
            // Admission control: shed instead of queueing past the cap.
            // Only this thread admits, so load-then-add cannot overshoot.
            if self.state.active_conns.load(Ordering::SeqCst) >= self.state.max_conns {
                shed(stream, &self.state);
                continue;
            }
            self.state.active_conns.fetch_add(1, Ordering::SeqCst);
            self.state.accepted_conns.fetch_add(1, Ordering::Relaxed);
            let mut q = self.state.conns.queue.lock();
            q.push_back((stream, Instant::now()));
            drop(q);
            self.state.conns.ready.notify_one();
        }

        // Graceful drain: stop accepting (release the port first so
        // clients see refusals, not hangs), wake handlers parked on idle
        // keep-alive connections by shutting the read side (their next
        // read sees EOF; in-flight responses still write), let every
        // in-flight request finish, then join the pool.
        self.state.stop.store(true, Ordering::SeqCst);
        drop(self.listener);
        for conn in self.state.serving.lock().values() {
            let _ = conn.shutdown(std::net::Shutdown::Read);
        }
        self.state.conns.ready.notify_all();
        for h in handlers {
            let _ = h.join();
        }
        accept_result
    }

    /// Run on a background thread; the handle shuts the server down
    /// cleanly on request (used by tests and the bench harness).
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let state = Arc::clone(&self.state);
        let thread = std::thread::spawn(move || {
            let _ = self.run();
        });
        ServerHandle {
            addr,
            state,
            thread,
        }
    }
}

/// Handle to a background server.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the server and join the accept loop. Sets the stop flag
    /// directly rather than sending a `shutdown` request: a wire request
    /// is an ordinary connection subject to the `--max-conns` admission
    /// cap, and a saturated server would shed it — deadlocking the join.
    /// The loopback connect (which also works on a `0.0.0.0` bind) only
    /// wakes the blocked `accept`; being shed is fine, the wake happened.
    pub fn shutdown(self) {
        self.state.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self_addr(&self.addr), Duration::from_secs(1));
        let _ = self.thread.join();
    }
}

/// One handler thread: pull admitted sockets off the queue until the
/// server drains. Sockets admitted before shutdown but not yet served
/// when it begins are closed unserved (the drain contract is to finish
/// *in-flight requests*, not to start new conversations).
fn handler_loop(state: &Arc<ServerState>) {
    loop {
        let stream = {
            let mut q = state.conns.queue.lock();
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if state.stop.load(Ordering::SeqCst) {
                    break None;
                }
                q = state.conns.queue.wait(&state.conns.ready, q);
            }
        };
        let Some((stream, accepted_at)) = stream else {
            return;
        };
        // Queue wait = accept → this pickup, the signal for tuning
        // `--max-conns` against handler-pool saturation. Distinct from
        // handler time, which starts below.
        let wait_us = accepted_at.elapsed().as_micros() as u64;
        state.queue_wait_us.fetch_add(wait_us, Ordering::Relaxed);
        state.hists.queue_wait.record(wait_us);
        if fairsel_obs::enabled() {
            fairsel_obs::record_span_at(
                "server.queue_wait",
                fairsel_obs::now_us().saturating_sub(wait_us),
                wait_us,
                Vec::new(),
            );
        }
        if !state.stop.load(Ordering::SeqCst) {
            serve_connection(stream, state);
        }
        state.active_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Serve one connection to completion, registered in the drain set and
/// shielded against panics: a request that panics costs this connection
/// only, never the handler thread or the `active_conns` accounting (with
/// a thread-per-connection design a panic was naturally confined; the
/// pool must confine it explicitly).
fn serve_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let id = state.next_conn_id.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        state.serving.lock().insert(id, clone);
    }
    // Close the race with the drain sweep: if stop landed between the
    // handler's check and this registration, the sweep may have already
    // run — shut our own read side so the first read sees EOF.
    if state.stop.load(Ordering::SeqCst) {
        let _ = stream.shutdown(std::net::Shutdown::Read);
    }
    // A panic is already reported by the panic hook; the connection dies
    // with it, the server keeps serving.
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = handle_connection(stream, state);
    }));
    state.serving.lock().remove(&id);
}

/// Refuse a connection at the admission cap: one structured `busy` frame,
/// then close. The short write timeout keeps a slow client from pinning
/// the acceptor thread.
fn shed(stream: TcpStream, state: &ServerState) {
    state.shed_conns.fetch_add(1, Ordering::SeqCst);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut io = Metered {
        stream: &stream,
        state,
    };
    let _ = write_json(&mut io, &Response::Busy.to_json());
}

fn handle_connection(stream: TcpStream, state: &ServerState) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut io = Metered {
        stream: &stream,
        state,
    };
    while let Some(value) = read_json(&mut io)? {
        let t0 = Instant::now();
        // Label from the raw frame so the request span and histogram
        // bucket are right even when full parsing fails.
        let cmd = cmd_label(value.get_str("cmd"));
        let _req_span = fairsel_obs::span_kv("server.request", || vec![("cmd", cmd.into())]);
        let parsed = {
            let _sp = fairsel_obs::span("server.parse");
            Request::from_json(&value)
        };
        let (response, stop) = match parsed {
            Err(e) => (Response::Err(e), false),
            Ok(Request::Ping) => (Response::ok("pong"), false),
            Ok(Request::Stats) => (stats_response(state), false),
            Ok(Request::Trace { last }) => (trace_response(last), false),
            Ok(Request::Shutdown) => (Response::ok("shutting down"), true),
            Ok(Request::Put) => match read_frame(&mut io)? {
                // EOF where the payload frame belongs: client hung up.
                None => return Ok(()),
                Some(bytes) => (put_response(&bytes, state), false),
            },
            Ok(Request::Append { fp }) => match read_frame(&mut io)? {
                None => return Ok(()),
                Some(bytes) => (append_response(fp, &bytes, state), false),
            },
            Ok(Request::Select(req)) => (
                match state.registry.select(&req) {
                    Ok((body, stats_json, cache)) => {
                        let stats = Json::parse(&stats_json).ok();
                        Response::Ok {
                            body,
                            stats,
                            cache: Some(cache),
                        }
                    }
                    Err(e) => Response::Err(e),
                },
                false,
            ),
            Ok(Request::Methods(req)) => (
                match state.registry.methods(&req) {
                    Ok((body, stats_json, cache)) => {
                        let stats = Json::parse(&stats_json).ok();
                        Response::Ok {
                            body,
                            stats,
                            cache: Some(cache),
                        }
                    }
                    Err(e) => Response::Err(e),
                },
                false,
            ),
        };
        {
            let _sp = fairsel_obs::span("server.respond");
            write_json(&mut io, &response.to_json())?;
        }
        let wall_us = t0.elapsed().as_micros() as u64;
        state.request_wall_us.fetch_add(wall_us, Ordering::Relaxed);
        state.hists.for_cmd(cmd).record(wall_us);
        state.hists.all.record(wall_us);
        state.requests_handled.fetch_add(1, Ordering::Relaxed);
        drop(_req_span);
        if stop {
            state.stop.store(true, Ordering::SeqCst);
            // Wake the blocked accept with a throwaway loopback
            // connection so the loop observes the flag and exits (the
            // bound address itself may be unspecified — `0.0.0.0`).
            let _ = TcpStream::connect_timeout(&self_addr(&state.addr), Duration::from_secs(1));
            break;
        }
        if state.stop.load(Ordering::SeqCst) {
            // Draining: this request was in flight and finished; do not
            // start another conversation on this connection.
            break;
        }
    }
    Ok(())
}

fn put_response(bytes: &[u8], state: &ServerState) -> Response {
    let table = match fairsel_table::decode_table(bytes) {
        Ok(t) => t,
        Err(e) => return Response::Err(format!("decoding dataset: {e}")),
    };
    match state.registry.put(table) {
        Ok(fp) => Response::Ok {
            body: format!("{fp:016x}"),
            stats: Some(Json::obj(vec![
                ("fingerprint", Json::Str(format!("{fp:016x}"))),
                ("bytes", Json::Num(bytes.len() as f64)),
                (
                    "resident_puts",
                    Json::Num(state.registry.resident_puts() as f64),
                ),
            ])),
            cache: None,
        },
        Err(e) => Response::Err(e),
    }
}

/// `{"cmd":"append","fp":...}` + one raw batch frame: extend the
/// fingerprinted dataset with the decoded rows. Only the appended rows
/// travel; the response body is the *child* fingerprint, and the
/// recorded lineage means the first select on the child is born warm
/// from the parent's session.
fn append_response(fp: u64, bytes: &[u8], state: &ServerState) -> Response {
    // Append payloads carry the dedicated `FSA1` row-batch magic — a
    // `put` table frame sent here (or vice versa) fails the magic check
    // instead of being silently interpreted as the wrong thing.
    let batch = match fairsel_table::decode_row_batch(bytes) {
        Ok(t) => t,
        Err(e) => return Response::Err(format!("decoding append batch: {e}")),
    };
    let batch_rows = batch.n_rows();
    match state.registry.append(fp, batch) {
        Ok((child_fp, rows)) => Response::Ok {
            body: format!("{child_fp:016x}"),
            stats: Some(Json::obj(vec![
                ("fingerprint", Json::Str(format!("{child_fp:016x}"))),
                ("parent", Json::Str(format!("{fp:016x}"))),
                ("bytes", Json::Num(bytes.len() as f64)),
                ("batch_rows", Json::Num(batch_rows as f64)),
                ("rows", Json::Num(rows as f64)),
                (
                    "resident_puts",
                    Json::Num(state.registry.resident_puts() as f64),
                ),
            ])),
            cache: None,
        },
        Err(e) => Response::Err(e),
    }
}

/// Static command label for spans and histogram routing; unknown or
/// missing commands land in the `error` bucket.
fn cmd_label(cmd: Option<&str>) -> &'static str {
    match cmd {
        Some("select") => "select",
        Some("methods") => "methods",
        Some("put") => "put",
        Some("append") => "append",
        Some("stats") => "stats",
        Some("trace") => "trace",
        Some("ping") => "ping",
        Some("shutdown") => "shutdown",
        _ => "error",
    }
}

/// One completed span as a JSON object (kv omitted when empty).
fn span_json(s: &CompletedSpan) -> Json {
    let mut pairs = vec![
        ("id", Json::Num(s.id as f64)),
        ("parent", Json::Num(s.parent as f64)),
        ("thread", Json::Num(s.thread as f64)),
        ("name", Json::Str(s.name.into())),
        ("start_us", Json::Num(s.start_us as f64)),
        ("dur_us", Json::Num(s.dur_us as f64)),
    ];
    if !s.kv.is_empty() {
        pairs.push((
            "kv",
            Json::obj(
                s.kv.iter()
                    .map(|(k, v)| (*k, Json::Str(v.clone())))
                    .collect(),
            ),
        ));
    }
    Json::obj(pairs)
}

/// `{"cmd":"trace"}`: the last `last` completed spans from the global
/// sink, ordered by start time, plus the exact eviction count.
fn trace_response(last: usize) -> Response {
    let sink = fairsel_obs::sink();
    let spans: Vec<Json> = sink
        .recent(last.clamp(1, fairsel_obs::DEFAULT_SINK_CAP))
        .iter()
        .map(span_json)
        .collect();
    Response::Ok {
        body: String::new(),
        stats: Some(Json::obj(vec![
            ("spans", Json::Arr(spans)),
            ("spans_dropped", Json::Num(sink.dropped() as f64)),
            ("trace_enabled", Json::Bool(sink.enabled())),
        ])),
        cache: None,
    }
}

/// One histogram snapshot as JSON: exact count/sum/max (µs), the
/// percentile edges, and the non-empty buckets as `[upper_edge_us,
/// count]` pairs in ascending order.
fn hist_json(s: &HistSnapshot) -> Json {
    Json::obj(vec![
        ("count", Json::Num(s.count as f64)),
        ("sum_us", Json::Num(s.sum as f64)),
        ("max_us", Json::Num(s.max as f64)),
        ("p50_us", Json::Num(s.p50() as f64)),
        ("p95_us", Json::Num(s.p95() as f64)),
        ("p99_us", Json::Num(s.p99() as f64)),
        (
            "buckets",
            Json::Arr(
                s.nonzero_buckets()
                    .into_iter()
                    .map(|(le, c)| Json::Arr(vec![Json::Num(le as f64), Json::Num(c as f64)]))
                    .collect(),
            ),
        ),
    ])
}

/// Every latency histogram by name: this server's per-command and
/// queue-wait distributions plus the process-wide registry (engine batch
/// kinds), name-sorted.
fn histograms_json(state: &ServerState) -> Json {
    let mut items: Vec<(String, HistSnapshot)> = state
        .hists
        .named()
        .iter()
        .map(|(name, h)| (name.to_string(), h.snapshot()))
        .collect();
    items.extend(fairsel_obs::histograms_snapshot());
    items.sort_by(|a, b| a.0.cmp(&b.0));
    Json::Obj(
        items
            .into_iter()
            .map(|(name, snap)| (name, hist_json(&snap)))
            .collect(),
    )
}

fn stats_response(state: &ServerState) -> Response {
    let r = &state.registry;
    let handled = state.requests_handled.load(Ordering::Relaxed);
    let wall_ms = state.request_wall_us.load(Ordering::Relaxed) as f64 / 1e3;
    let wall = state.hists.all.snapshot();
    let qwait = state.hists.queue_wait.snapshot();
    Response::Ok {
        body: String::new(),
        stats: Some(Json::obj(vec![
            ("resident_datasets", Json::Num(r.resident() as f64)),
            ("resident_puts", Json::Num(r.resident_puts() as f64)),
            ("requests", Json::Num(r.requests() as f64)),
            ("dataset_evictions", Json::Num(r.evictions() as f64)),
            ("put_evictions", Json::Num(r.put_evictions() as f64)),
            ("warm_children", Json::Num(r.warm_children() as f64)),
            ("memo_patched_total", Json::Num(r.memo_patched() as f64)),
            (
                "memo_invalidated_total",
                Json::Num(r.memo_invalidated() as f64),
            ),
            (
                "active_conns",
                Json::Num(state.active_conns.load(Ordering::SeqCst) as f64),
            ),
            (
                "shed_conns",
                Json::Num(state.shed_conns.load(Ordering::SeqCst) as f64),
            ),
            (
                "accepted_conns",
                Json::Num(state.accepted_conns.load(Ordering::Relaxed) as f64),
            ),
            ("max_conns", Json::Num(state.max_conns as f64)),
            (
                "bytes_rx",
                Json::Num(state.bytes_rx.load(Ordering::Relaxed) as f64),
            ),
            (
                "bytes_tx",
                Json::Num(state.bytes_tx.load(Ordering::Relaxed) as f64),
            ),
            ("requests_handled", Json::Num(handled as f64)),
            ("request_wall_ms", Json::Num(wall_ms)),
            // Lifetime-cumulative mean, kept for compatibility; it hides
            // tail latency — prefer the histogram percentiles below.
            (
                "avg_request_wall_ms",
                Json::Num(if handled == 0 {
                    0.0
                } else {
                    wall_ms / handled as f64
                }),
            ),
            ("request_wall_p50_ms", Json::Num(wall.p50() as f64 / 1e3)),
            ("request_wall_p95_ms", Json::Num(wall.p95() as f64 / 1e3)),
            ("request_wall_p99_ms", Json::Num(wall.p99() as f64 / 1e3)),
            ("request_wall_max_ms", Json::Num(wall.max as f64 / 1e3)),
            // Admission queue wait (accept → handler pickup), separate
            // from handler time: the `--max-conns` tuning signal.
            (
                "queue_wait_ms",
                Json::Num(state.queue_wait_us.load(Ordering::Relaxed) as f64 / 1e3),
            ),
            ("queue_wait_p50_ms", Json::Num(qwait.p50() as f64 / 1e3)),
            ("queue_wait_p95_ms", Json::Num(qwait.p95() as f64 / 1e3)),
            ("queue_wait_p99_ms", Json::Num(qwait.p99() as f64 / 1e3)),
            ("queue_wait_max_ms", Json::Num(qwait.max as f64 / 1e3)),
            (
                "pool_busy_ms",
                Json::Num(fairsel_obs::counter("engine_pool_busy_us").get() as f64 / 1e3),
            ),
            (
                "spans_dropped",
                Json::Num(fairsel_obs::sink().dropped() as f64),
            ),
            ("trace_enabled", Json::Bool(fairsel_obs::enabled())),
            ("histograms", histograms_json(state)),
        ])),
        cache: None,
    }
}

/// One-shot client: connect, send one request, read one response. The
/// CLI's `--remote` path and the bench harness both use this; a connect
/// failure surfaces as `Err`, which the CLI treats as "fall back to local
/// execution".
pub fn request(addr: &str, req: &Request) -> io::Result<Response> {
    request_raw(addr, req.to_json().to_string().as_bytes())
}

/// [`request`] over an already-serialized request payload — for callers
/// that measured or cached the frame bytes and should not pay a second
/// serialization (the CLI's transport telemetry does).
pub fn request_raw(addr: &str, payload: &[u8]) -> io::Result<Response> {
    let mut stream = connect(addr)?;
    crate::proto::write_frame(&mut stream, payload)?;
    read_response(&mut stream)
}

/// One-shot dataset upload: send `put` plus the raw
/// [`fairsel_table::codec`] payload, and return the server's response
/// (`body` is the dataset fingerprint as 16 hex chars on success).
pub fn put_dataset(addr: &str, codec_bytes: &[u8]) -> io::Result<Response> {
    let mut stream = connect(addr)?;
    write_json(&mut stream, &Request::Put.to_json())?;
    crate::proto::write_frame(&mut stream, codec_bytes)?;
    read_response(&mut stream)
}

/// One-shot streaming append: send `{"cmd":"append","fp":...}` plus the
/// raw codec payload of the row batch, and return the server's response
/// (`body` is the *child* dataset fingerprint as 16 hex chars on
/// success). Only the appended rows travel the wire.
pub fn append_rows(addr: &str, fp: u64, codec_bytes: &[u8]) -> io::Result<Response> {
    let mut stream = connect(addr)?;
    write_json(&mut stream, &Request::Append { fp }.to_json())?;
    crate::proto::write_frame(&mut stream, codec_bytes)?;
    read_response(&mut stream)
}

fn connect(addr: &str) -> io::Result<TcpStream> {
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    let stream = TcpStream::connect_timeout(&sock, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    Ok(stream)
}

fn read_response(stream: &mut TcpStream) -> io::Result<Response> {
    match read_json(stream)? {
        Some(v) => {
            Response::from_json(&v).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        }
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed without responding",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{DatasetRef, WorkloadRequest};
    use fairsel_table::{codec, csv, Column, Role, Table};

    fn small_table(rows: usize) -> Table {
        Table::new(vec![
            Column::cat(
                "s",
                Role::Sensitive,
                (0..rows).map(|i| (i % 2) as u32).collect(),
                2,
            ),
            Column::cat(
                "x1",
                Role::Feature,
                (0..rows).map(|i| ((i / 2) % 2) as u32).collect(),
                2,
            ),
            Column::cat(
                "y",
                Role::Target,
                (0..rows).map(|i| ((i / 4) % 2) as u32).collect(),
                2,
            ),
        ])
        .unwrap()
    }

    fn csv_text(rows: usize) -> String {
        csv::to_csv_string(&small_table(rows))
    }

    #[test]
    fn ping_select_stats_shutdown_over_tcp() {
        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.spawn();

        let pong = request(&addr, &Request::Ping).unwrap();
        assert_eq!(pong, Response::ok("pong"));

        let req = Request::Select(WorkloadRequest::with_csv(csv_text(200)));
        let first = request(&addr, &req).unwrap();
        let Response::Ok { body, stats, cache } = first else {
            panic!("select failed: {first:?}");
        };
        assert!(body.contains("== selection"), "{body}");
        assert!(stats.is_some());
        let cache = cache.expect("select carries cache info");
        assert_eq!(cache.sessions_served, 1);

        // Warm repeat: byte-identical body, shared hits reported.
        let second = request(&addr, &req).unwrap();
        let Response::Ok {
            body: body2,
            cache: cache2,
            ..
        } = second
        else {
            panic!("warm select failed");
        };
        assert_eq!(body, body2);
        let cache2 = cache2.unwrap();
        assert_eq!(cache2.sessions_served, 2);
        assert!(cache2.shared_hits > cache.shared_hits);

        let stats = request(&addr, &Request::Stats).unwrap();
        let Response::Ok { stats: Some(s), .. } = stats else {
            panic!("stats failed");
        };
        assert_eq!(s.get_u64("requests"), Some(2));
        assert_eq!(s.get_u64("resident_datasets"), Some(1));
        // Connection telemetry: every request above was its own admitted
        // connection; nothing was shed; real bytes moved both ways; the
        // request clock ticked.
        assert_eq!(s.get_u64("shed_conns"), Some(0));
        // At least the stats connection itself is active; earlier
        // one-shot connections may linger until their handler sees EOF.
        let active = s.get_u64("active_conns").unwrap();
        assert!((1..=4).contains(&active), "active_conns = {active}");
        assert!(s.get_u64("accepted_conns").unwrap() >= 4);
        assert!(s.get_u64("bytes_rx").unwrap() > 0);
        assert!(s.get_u64("bytes_tx").unwrap() > 0);
        assert!(s.get_num("request_wall_ms").unwrap() > 0.0);

        handle.shutdown();
        // The port is released: further requests fail to connect.
        assert!(request(&addr, &Request::Ping).is_err());
    }

    #[test]
    fn malformed_requests_get_error_responses() {
        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.spawn();

        let bad = request(
            &addr,
            &Request::Select(WorkloadRequest::with_csv("garbage")),
        )
        .unwrap();
        assert!(matches!(bad, Response::Err(_)));

        // A raw frame that is not a valid request object.
        let sock = addr.parse().unwrap();
        let mut stream = TcpStream::connect_timeout(&sock, Duration::from_secs(5)).unwrap();
        write_json(&mut stream, &Json::obj(vec![("nope", Json::Null)])).unwrap();
        let resp = read_json(&mut stream).unwrap().unwrap();
        assert_eq!(resp.get_bool("ok"), Some(false));
        drop(stream);

        handle.shutdown();
    }

    #[test]
    fn methods_request_served_through_shared_session() {
        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.spawn();
        let req = Request::Methods(WorkloadRequest::with_csv(csv_text(240)));
        let resp = request(&addr, &req).unwrap();
        let Response::Ok { body, cache, .. } = resp else {
            panic!("methods failed: {resp:?}");
        };
        for m in ["a-only", "all", "seqsel", "grpsel", "fair-pc"] {
            assert!(body.contains(m), "missing {m} in {body}");
        }
        let cache = cache.expect("methods response carries cache info");
        assert_eq!(cache.sessions_served, 1);
        // Even a cold sweep dedups across methods (Fair-PC's marginal
        // layer overlaps SeqSel's ∅-subset queries).
        assert!(cache.shared_hits > 0, "cross-method dedup expected");

        // Warm repeat: the sweep runs inside the same registry session,
        // so the replay is (almost) entirely shared-memo hits.
        let resp = request(&addr, &req).unwrap();
        let Response::Ok {
            body: body2,
            cache: cache2,
            ..
        } = resp
        else {
            panic!("warm methods failed");
        };
        assert_eq!(body2.lines().next(), body.lines().next());
        let cache2 = cache2.unwrap();
        assert_eq!(cache2.sessions_served, 2);
        assert!(
            cache2.shared_hits > cache.shared_hits,
            "warm methods call must hit the shared session memo ({} !> {})",
            cache2.shared_hits,
            cache.shared_hits
        );

        // A `select` on the same dataset shares the very same session:
        // it is answered from the sweep's warmed cache.
        let sel = request(
            &addr,
            &Request::Select(WorkloadRequest::with_csv(csv_text(240))),
        )
        .unwrap();
        let Response::Ok {
            cache: sel_cache, ..
        } = sel
        else {
            panic!("select after methods failed");
        };
        let sel_cache = sel_cache.unwrap();
        assert_eq!(sel_cache.sessions_served, 3, "one session serves all three");
        handle.shutdown();
    }

    /// `put` + fingerprint-addressed `select` over real TCP: the warm
    /// request ships a few hundred bytes, resolves against the uploaded
    /// table, and returns a body byte-identical to the inline-CSV path.
    #[test]
    fn put_then_select_by_fp_over_tcp() {
        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.spawn();

        let table = small_table(200);
        let resp = put_dataset(&addr, &codec::encode_table(&table)).unwrap();
        let Response::Ok { body: fp_hex, .. } = resp else {
            panic!("put failed: {resp:?}");
        };
        let fp = u64::from_str_radix(&fp_hex, 16).expect("hex fingerprint");

        let by_fp = Request::Select(WorkloadRequest {
            dataset: DatasetRef::Fp(fp),
            ..Default::default()
        });
        let Response::Ok { body, cache, .. } = request(&addr, &by_fp).unwrap() else {
            panic!("select by fp failed");
        };
        assert_eq!(cache.unwrap().fingerprint, fp);

        let by_csv = Request::Select(WorkloadRequest::with_csv(csv_text(200)));
        let Response::Ok { body: body2, .. } = request(&addr, &by_csv).unwrap() else {
            panic!("select by csv failed");
        };
        assert_eq!(body, body2, "fp and csv spellings must agree byte-for-byte");

        // An unknown fingerprint is a clean error, not a hang or crash.
        let unknown = Request::Select(WorkloadRequest {
            dataset: DatasetRef::Fp(fp ^ 1),
            ..Default::default()
        });
        let Response::Err(e) = request(&addr, &unknown).unwrap() else {
            panic!("unknown fp must error");
        };
        assert!(e.contains("unknown dataset fingerprint"), "{e}");

        // Corrupt codec bytes are rejected with a decode error.
        let Response::Err(e) = put_dataset(&addr, b"not a table").unwrap() else {
            panic!("bad put must error");
        };
        assert!(e.contains("decoding dataset"), "{e}");

        handle.shutdown();
    }

    /// Streaming append over real TCP: `put` the base, `append` a batch
    /// (only the batch travels), then select the child fingerprint —
    /// served warm from the parent session and byte-identical to a cold
    /// run on the full concatenated table.
    #[test]
    fn put_append_then_warm_child_select_over_tcp() {
        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.spawn();

        let base = small_table(200);
        let full = small_table(248);
        let suffix: Vec<usize> = (200..248).collect();
        let batch = full.take_rows(&suffix);

        let resp = put_dataset(&addr, &codec::encode_table(&base)).unwrap();
        let Response::Ok { body: fp_hex, .. } = resp else {
            panic!("put failed: {resp:?}");
        };
        let fp = u64::from_str_radix(&fp_hex, 16).unwrap();

        // Warm the parent session, then extend it.
        let parent_req = Request::Select(WorkloadRequest {
            dataset: DatasetRef::Fp(fp),
            ..Default::default()
        });
        assert!(matches!(
            request(&addr, &parent_req).unwrap(),
            Response::Ok { .. }
        ));

        // A put-style table frame must be rejected at the magic check —
        // the append wire carries the dedicated FSA1 row-batch frame.
        let wrong_magic = append_rows(&addr, fp, &codec::encode_table(&batch)).unwrap();
        let Response::Err(e) = wrong_magic else {
            panic!("table-framed append accepted: {wrong_magic:?}");
        };
        assert!(e.contains("bad magic"), "unexpected error: {e}");

        let batch_bytes = codec::encode_row_batch(&batch);
        let resp = append_rows(&addr, fp, &batch_bytes).unwrap();
        let Response::Ok {
            body: child_hex,
            stats: Some(stats),
            ..
        } = resp
        else {
            panic!("append failed: {resp:?}");
        };
        let child_fp = u64::from_str_radix(&child_hex, 16).unwrap();
        assert_ne!(child_fp, fp);
        assert_eq!(stats.get_u64("batch_rows"), Some(48));
        assert_eq!(stats.get_u64("rows"), Some(248));
        assert_eq!(
            child_fp,
            crate::registry::fingerprint_table(&full),
            "append child must fingerprint as the concatenated table"
        );

        // Child select: born warm, with the extend ledger in the engine
        // stats, and byte-identical to a cold run on the full table.
        let child_req = Request::Select(WorkloadRequest {
            dataset: DatasetRef::Fp(child_fp),
            ..Default::default()
        });
        let Response::Ok {
            body: warm_body,
            stats: Some(warm_stats),
            ..
        } = request(&addr, &child_req).unwrap()
        else {
            panic!("child select failed");
        };
        assert!(
            warm_stats.get_u64("extended_encodings").unwrap_or(0) > 0,
            "warm child must report extended encodings: {warm_stats:?}"
        );
        assert!(warm_stats.get_u64("append_rows").unwrap_or(0) > 0);

        let Response::Ok {
            body: cold_body, ..
        } = request(
            &addr,
            &Request::Select(WorkloadRequest::with_csv(csv::to_csv_string(&full))),
        )
        .unwrap()
        else {
            panic!("cold select failed");
        };
        assert_eq!(warm_body, cold_body, "warm child must match cold run");

        // Appending to a bogus fingerprint fails clean over the wire.
        let resp = append_rows(&addr, fp ^ 0x5555, &batch_bytes).unwrap();
        let Response::Err(e) = resp else {
            panic!("append to unknown fp must error: {resp:?}");
        };
        assert!(e.contains("unknown dataset fingerprint"), "{e}");

        handle.shutdown();
    }

    /// Regression: the shutdown wake-up used to connect to the bound
    /// address verbatim; bound to `0.0.0.0:0` that connect targets the
    /// unspecified address (platform-dependent, fails on some systems)
    /// and the accept loop hangs until the next organic connection.
    /// `shutdown` must return promptly on a wildcard bind.
    #[test]
    fn shutdown_drains_promptly_on_wildcard_bind() {
        let server = Server::bind("0.0.0.0:0", ServeConfig::default()).unwrap();
        let bound = server.local_addr();
        assert!(bound.ip().is_unspecified());
        let reach = self_addr(&bound).to_string();
        let handle = server.spawn();
        let pong = request(&reach, &Request::Ping).unwrap();
        assert_eq!(pong, Response::ok("pong"));

        let t0 = Instant::now();
        handle.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "wildcard-bind shutdown hung for {:?}",
            t0.elapsed()
        );
        assert!(request(&reach, &Request::Ping).is_err(), "port released");
    }

    /// The admission cap sheds excess connections with the structured
    /// busy response while admitted connections keep working.
    #[test]
    fn admission_cap_sheds_with_busy() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                conn_workers: 2,
                max_conns: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let sock: SocketAddr = addr.parse().unwrap();
        let handle = server.spawn();

        // Two held connections occupy the cap…
        let mut held: Vec<TcpStream> = (0..2)
            .map(|_| {
                let mut s = TcpStream::connect_timeout(&sock, Duration::from_secs(5)).unwrap();
                write_json(&mut s, &Request::Ping.to_json()).unwrap();
                let resp = Response::from_json(&read_json(&mut s).unwrap().unwrap()).unwrap();
                assert_eq!(resp, Response::ok("pong"));
                s
            })
            .collect();
        // …so the third is shed with `busy`.
        let mut extra = TcpStream::connect_timeout(&sock, Duration::from_secs(5)).unwrap();
        let resp = Response::from_json(&read_json(&mut extra).unwrap().unwrap()).unwrap();
        assert_eq!(resp, Response::Busy);
        drop(extra);

        // Held connections still serve requests — including exact
        // telemetry: both admitted slots live, exactly one connection
        // shed so far.
        for s in &mut held {
            write_json(s, &Request::Ping.to_json()).unwrap();
            let resp = Response::from_json(&read_json(s).unwrap().unwrap()).unwrap();
            assert_eq!(resp, Response::ok("pong"));
        }
        write_json(&mut held[0], &Request::Stats.to_json()).unwrap();
        let resp = Response::from_json(&read_json(&mut held[0]).unwrap().unwrap()).unwrap();
        let Response::Ok { stats: Some(s), .. } = resp else {
            panic!("stats on a held connection failed");
        };
        assert_eq!(s.get_u64("shed_conns"), Some(1));
        assert_eq!(s.get_u64("active_conns"), Some(2));
        drop(held);

        // Once the held connections close, new ones are admitted again.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match request(&addr, &Request::Ping) {
                Ok(Response::Ok { .. }) => break,
                Ok(Response::Busy) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                other => panic!("ping after drain: {other:?}"),
            }
        }
        handle.shutdown();
    }

    /// Regression: graceful drain must not wait out `IO_TIMEOUT` on
    /// handlers parked reading an idle keep-alive connection — the drain
    /// shuts their read side so they observe EOF immediately.
    #[test]
    fn shutdown_is_prompt_with_idle_connection_held_open() {
        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr();
        let handle = server.spawn();

        // Park a handler: complete one ping, then hold the socket open.
        let mut idle = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
        write_json(&mut idle, &Request::Ping.to_json()).unwrap();
        assert!(read_json(&mut idle).unwrap().is_some());

        let t0 = Instant::now();
        handle.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "drain hung {:?} on an idle connection",
            t0.elapsed()
        );
        drop(idle);
    }

    #[test]
    fn accept_backoff_is_bounded_and_capped() {
        // First failure: smallest delay; growth is monotone and capped.
        let mut last = Duration::ZERO;
        for k in 1..=MAX_CONSECUTIVE_ACCEPT_ERRORS {
            let d = accept_backoff(k).expect("within cap");
            assert!(d >= last, "backoff must not shrink");
            assert!(d <= Duration::from_millis(128), "backoff must stay bounded");
            last = d;
        }
        assert_eq!(accept_backoff(1), Some(Duration::from_millis(1)));
        assert_eq!(
            accept_backoff(MAX_CONSECUTIVE_ACCEPT_ERRORS + 1),
            None,
            "past the cap the loop must exit with an error"
        );
    }

    #[test]
    fn self_addr_maps_wildcards_to_loopback() {
        let v4: SocketAddr = "0.0.0.0:4990".parse().unwrap();
        assert_eq!(self_addr(&v4), "127.0.0.1:4990".parse().unwrap());
        let v6: SocketAddr = "[::]:4990".parse().unwrap();
        assert_eq!(self_addr(&v6), "[::1]:4990".parse().unwrap());
        let concrete: SocketAddr = "127.0.0.1:7".parse().unwrap();
        assert_eq!(self_addr(&concrete), concrete);
    }
}
