//! The TCP server and the one-shot client.
//!
//! `fairsel serve` binds a listener and dispatches one thread per
//! connection; each connection may issue any number of length-prefixed
//! JSON requests (see [`crate::proto`]). All workload state lives in the
//! shared [`Registry`], so every connection — and every request within
//! one — sees the same fingerprint-sharded sessions.

use crate::json::Json;
use crate::proto::{read_json, write_json, Request, Response};
use crate::registry::{Registry, RegistryConfig};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-connection I/O timeout: a stalled client cannot pin a handler
/// thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(120);

/// Server configuration (see [`RegistryConfig`] for the cache knobs).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeConfig {
    pub registry: RegistryConfig,
}

struct ServerState {
    registry: Registry,
    stop: AtomicBool,
    addr: SocketAddr,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Bind an address (`127.0.0.1:0` picks an ephemeral port — how tests
    /// and benches run hermetically).
    pub fn bind(addr: &str, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                registry: Registry::new(cfg.registry),
                stop: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Accept-and-dispatch loop; returns after a `shutdown` request.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.state.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &state);
            });
        }
        Ok(())
    }

    /// Run on a background thread; the handle shuts the server down
    /// cleanly on request (used by tests and the bench harness).
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let thread = std::thread::spawn(move || {
            let _ = self.run();
        });
        ServerHandle { addr, thread }
    }
}

/// Handle to a background server.
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Send `shutdown` and join the accept loop.
    pub fn shutdown(self) {
        let _ = request(&self.addr.to_string(), &Request::Shutdown);
        let _ = self.thread.join();
    }
}

fn handle_connection(mut stream: TcpStream, state: &ServerState) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    while let Some(value) = read_json(&mut stream)? {
        let (response, stop) = match Request::from_json(&value) {
            Err(e) => (Response::Err(e), false),
            Ok(Request::Ping) => (Response::ok("pong"), false),
            Ok(Request::Stats) => (stats_response(state), false),
            Ok(Request::Shutdown) => (Response::ok("shutting down"), true),
            Ok(Request::Select(req)) => (
                match state.registry.select(&req) {
                    Ok((body, stats_json, cache)) => {
                        let stats = Json::parse(&stats_json).ok();
                        Response::Ok {
                            body,
                            stats,
                            cache: Some(cache),
                        }
                    }
                    Err(e) => Response::Err(e),
                },
                false,
            ),
            Ok(Request::Methods(req)) => (
                match state.registry.methods(&req) {
                    Ok((body, stats_json, cache)) => {
                        let stats = Json::parse(&stats_json).ok();
                        Response::Ok {
                            body,
                            stats,
                            cache: Some(cache),
                        }
                    }
                    Err(e) => Response::Err(e),
                },
                false,
            ),
        };
        write_json(&mut stream, &response.to_json())?;
        if stop {
            state.stop.store(true, Ordering::SeqCst);
            // Wake the blocked accept with a throwaway connection so the
            // loop observes the flag and exits.
            let _ = TcpStream::connect_timeout(&state.addr, Duration::from_secs(1));
            break;
        }
    }
    Ok(())
}

fn stats_response(state: &ServerState) -> Response {
    let r = &state.registry;
    Response::Ok {
        body: String::new(),
        stats: Some(Json::obj(vec![
            ("resident_datasets", Json::Num(r.resident() as f64)),
            ("requests", Json::Num(r.requests() as f64)),
            ("dataset_evictions", Json::Num(r.evictions() as f64)),
        ])),
        cache: None,
    }
}

/// One-shot client: connect, send one request, read one response. The
/// CLI's `--remote` path and the bench harness both use this; a connect
/// failure surfaces as `Err`, which the CLI treats as "fall back to local
/// execution".
pub fn request(addr: &str, req: &Request) -> io::Result<Response> {
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&sock, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    write_json(&mut stream, &req.to_json())?;
    match read_json(&mut stream)? {
        Some(v) => {
            Response::from_json(&v).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        }
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed without responding",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::WorkloadRequest;
    use fairsel_table::{csv, Column, Role, Table};

    fn csv_text(rows: usize) -> String {
        let t = Table::new(vec![
            Column::cat(
                "s",
                Role::Sensitive,
                (0..rows).map(|i| (i % 2) as u32).collect(),
                2,
            ),
            Column::cat(
                "x1",
                Role::Feature,
                (0..rows).map(|i| ((i / 2) % 2) as u32).collect(),
                2,
            ),
            Column::cat(
                "y",
                Role::Target,
                (0..rows).map(|i| ((i / 4) % 2) as u32).collect(),
                2,
            ),
        ])
        .unwrap();
        csv::to_csv_string(&t)
    }

    #[test]
    fn ping_select_stats_shutdown_over_tcp() {
        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.spawn();

        let pong = request(&addr, &Request::Ping).unwrap();
        assert_eq!(pong, Response::ok("pong"));

        let req = Request::Select(WorkloadRequest {
            csv: csv_text(200),
            ..Default::default()
        });
        let first = request(&addr, &req).unwrap();
        let Response::Ok { body, stats, cache } = first else {
            panic!("select failed: {first:?}");
        };
        assert!(body.contains("== selection"), "{body}");
        assert!(stats.is_some());
        let cache = cache.expect("select carries cache info");
        assert_eq!(cache.sessions_served, 1);

        // Warm repeat: byte-identical body, shared hits reported.
        let second = request(&addr, &req).unwrap();
        let Response::Ok {
            body: body2,
            cache: cache2,
            ..
        } = second
        else {
            panic!("warm select failed");
        };
        assert_eq!(body, body2);
        let cache2 = cache2.unwrap();
        assert_eq!(cache2.sessions_served, 2);
        assert!(cache2.shared_hits > cache.shared_hits);

        let stats = request(&addr, &Request::Stats).unwrap();
        let Response::Ok { stats: Some(s), .. } = stats else {
            panic!("stats failed");
        };
        assert_eq!(s.get_u64("requests"), Some(2));
        assert_eq!(s.get_u64("resident_datasets"), Some(1));

        handle.shutdown();
        // The port is released: further requests fail to connect.
        assert!(request(&addr, &Request::Ping).is_err());
    }

    #[test]
    fn malformed_requests_get_error_responses() {
        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.spawn();

        let bad = request(
            &addr,
            &Request::Select(WorkloadRequest {
                csv: "garbage".into(),
                ..Default::default()
            }),
        )
        .unwrap();
        assert!(matches!(bad, Response::Err(_)));

        // A raw frame that is not a valid request object.
        let sock = addr.parse().unwrap();
        let mut stream = TcpStream::connect_timeout(&sock, Duration::from_secs(5)).unwrap();
        write_json(&mut stream, &Json::obj(vec![("nope", Json::Null)])).unwrap();
        let resp = read_json(&mut stream).unwrap().unwrap();
        assert_eq!(resp.get_bool("ok"), Some(false));
        drop(stream);

        handle.shutdown();
    }

    #[test]
    fn methods_request_served_through_shared_session() {
        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.spawn();
        let req = Request::Methods(WorkloadRequest {
            csv: csv_text(240),
            ..Default::default()
        });
        let resp = request(&addr, &req).unwrap();
        let Response::Ok { body, cache, .. } = resp else {
            panic!("methods failed: {resp:?}");
        };
        for m in ["a-only", "all", "seqsel", "grpsel", "fair-pc"] {
            assert!(body.contains(m), "missing {m} in {body}");
        }
        let cache = cache.expect("methods response carries cache info");
        assert_eq!(cache.sessions_served, 1);
        // Even a cold sweep dedups across methods (Fair-PC's marginal
        // layer overlaps SeqSel's ∅-subset queries).
        assert!(cache.shared_hits > 0, "cross-method dedup expected");

        // Warm repeat: the sweep runs inside the same registry session,
        // so the replay is (almost) entirely shared-memo hits.
        let resp = request(&addr, &req).unwrap();
        let Response::Ok {
            body: body2,
            cache: cache2,
            ..
        } = resp
        else {
            panic!("warm methods failed");
        };
        assert_eq!(body2.lines().next(), body.lines().next());
        let cache2 = cache2.unwrap();
        assert_eq!(cache2.sessions_served, 2);
        assert!(
            cache2.shared_hits > cache.shared_hits,
            "warm methods call must hit the shared session memo ({} !> {})",
            cache2.shared_hits,
            cache.shared_hits
        );

        // A `select` on the same dataset shares the very same session:
        // it is answered from the sweep's warmed cache.
        let sel = request(
            &addr,
            &Request::Select(WorkloadRequest {
                csv: csv_text(240),
                ..Default::default()
            }),
        )
        .unwrap();
        let Response::Ok {
            cache: sel_cache, ..
        } = sel
        else {
            panic!("select after methods failed");
        };
        let sel_cache = sel_cache.unwrap();
        assert_eq!(sel_cache.sessions_served, 3, "one session serves all three");
        handle.shutdown();
    }
}
