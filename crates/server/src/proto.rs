//! The wire protocol: length-prefixed JSON frames and the typed
//! request/response vocabulary.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. One connection may carry any number of
//! request/response pairs; a clean EOF between frames ends the
//! conversation. Frames are capped at [`MAX_FRAME`] bytes so a corrupt
//! length prefix cannot make the server allocate unboundedly.
//!
//! Requests (`cmd` field selects the variant):
//!
//! ```text
//! {"cmd":"select", "csv":"..."|"fp":"<16-hex>", "algo":"grpsel",
//!  "tester":"gtest", "alpha":0.01, "workers":4, "max_group":"auto"|N|null,
//!  "train_frac":0.7, "seed":0, "classifier":"logistic"}
//! {"cmd":"methods", ...same workload fields...}
//! {"cmd":"put"}        followed by ONE raw binary frame: the dataset in
//!                      the fairsel_table::codec column format; responds
//!                      with the dataset fingerprint (16 hex chars in
//!                      `body`), after which select/methods may address
//!                      the dataset as {"fp":"..."} — bytes instead of
//!                      megabytes on every warm request
//! {"cmd":"append", "fp":"<16-hex>"}
//!                      followed by ONE raw binary frame: a row batch in
//!                      the fairsel_table::codec append format (FSA1).
//!                      Extends the fingerprinted dataset into a *child*
//!                      dataset and responds with the child fingerprint in
//!                      `body`; the registry records the parent→child
//!                      lineage, so the first select/methods against the
//!                      child is born warm (parent session scaffolds are
//!                      extended instead of rebuilt) — only the appended
//!                      rows ever travel on the wire
//! {"cmd":"stats"}      server-wide registry + connection telemetry,
//!                      latency histograms, and spans_dropped
//! {"cmd":"trace", "last":64}
//!                      the last N completed trace spans as JSON (requires
//!                      the server's span sink, on by default for `serve`)
//! {"cmd":"ping"}
//! {"cmd":"shutdown"}   stop accepting, drain in-flight, then exit
//! ```
//!
//! Responses: `{"ok":true, "body":..., "stats":..., "cache":...}`,
//! `{"ok":false, "error":"..."}`, or — when the server's `--max-conns`
//! admission cap sheds the connection — the structured busy error
//! `{"ok":false, "busy":true, "error":"..."}` so clients can tell
//! overload apart from a rejected request. The `body` of a `select` is
//! the deterministic selection + fairness report rendered by
//! `fairsel_core::render_pipeline_report` — byte-identical to a local run
//! of the same workload — and `cache` carries the per-dataset shared-cache
//! telemetry (fingerprint, sessions served, memo hits, encode
//! hits/misses/evictions).

use crate::json::Json;
use std::io::{self, Read, Write};

/// Upper bound on a frame payload (64 MiB — a ~50 MB CSV still fits).
pub const MAX_FRAME: usize = 64 << 20;

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame; `Ok(None)` on clean EOF before any length byte.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let n = u32::from_be_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {n} exceeds MAX_FRAME"),
        ));
    }
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

/// Serialize and send one JSON frame.
pub fn write_json<W: Write>(w: &mut W, v: &Json) -> io::Result<()> {
    write_frame(w, v.to_string().as_bytes())
}

/// Receive and parse one JSON frame; `Ok(None)` on clean EOF.
pub fn read_json<R: Read>(r: &mut R) -> io::Result<Option<Json>> {
    match read_frame(r)? {
        None => Ok(None),
        Some(bytes) => {
            let text = String::from_utf8(bytes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            Json::parse(&text)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        }
    }
}

/// The GrpSel root-group width knob, mirroring the CLI's
/// `--max-group N|auto` (resolved server-side against the *train* split's
/// row count, exactly as a local run resolves it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaxGroupSpec {
    None,
    Auto,
    Width(usize),
}

impl MaxGroupSpec {
    fn to_json(self) -> Json {
        match self {
            MaxGroupSpec::None => Json::Null,
            MaxGroupSpec::Auto => Json::Str("auto".into()),
            MaxGroupSpec::Width(n) => Json::Num(n as f64),
        }
    }

    fn from_json(v: Option<&Json>) -> Result<Self, String> {
        match v {
            None | Some(Json::Null) => Ok(MaxGroupSpec::None),
            Some(Json::Str(s)) if s == "auto" => Ok(MaxGroupSpec::Auto),
            Some(Json::Num(n)) if *n >= 1.0 && n.fract() == 0.0 => {
                Ok(MaxGroupSpec::Width(*n as usize))
            }
            Some(other) => Err(format!("bad max_group: {other}")),
        }
    }
}

/// How a workload names its dataset: inline CSV text (the same bytes a
/// local run would read from disk — always works, ships the whole table)
/// or a fingerprint returned by a prior `put` (bytes instead of
/// megabytes; the server answers `unknown dataset fingerprint` if the
/// entry was evicted, and the client falls back to inline CSV).
#[derive(Clone, Debug, PartialEq)]
pub enum DatasetRef {
    Csv(String),
    Fp(u64),
}

impl DatasetRef {
    /// The inline CSV text, if that is how the dataset travels.
    pub fn as_csv(&self) -> Option<&str> {
        match self {
            DatasetRef::Csv(text) => Some(text),
            DatasetRef::Fp(_) => None,
        }
    }
}

/// One select/methods workload: the dataset reference plus every knob
/// that affects the deterministic output.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadRequest {
    pub dataset: DatasetRef,
    pub algo: String,
    pub tester: String,
    pub alpha: f64,
    pub workers: usize,
    pub max_group: MaxGroupSpec,
    /// Speculative frontier scheduling (`SelectConfig::speculate`) — an
    /// execution knob: selections are byte-identical either way, so like
    /// `workers` it does not shard the session registry.
    pub speculate: bool,
    pub train_frac: f64,
    pub seed: u64,
    pub classifier: String,
}

impl Default for WorkloadRequest {
    fn default() -> Self {
        Self {
            dataset: DatasetRef::Csv(String::new()),
            algo: "grpsel".into(),
            tester: "gtest".into(),
            alpha: 0.01,
            workers: 1,
            max_group: MaxGroupSpec::None,
            speculate: false,
            train_frac: 0.7,
            seed: 0,
            classifier: "logistic".into(),
        }
    }
}

impl WorkloadRequest {
    /// Workload over inline CSV text with default knobs — the common
    /// construction in tests and benches.
    pub fn with_csv(csv: impl Into<String>) -> Self {
        Self {
            dataset: DatasetRef::Csv(csv.into()),
            ..Default::default()
        }
    }

    fn to_json_fields(&self, cmd: &str) -> Json {
        let dataset = match &self.dataset {
            DatasetRef::Csv(text) => ("csv", Json::Str(text.clone())),
            // Like the response fingerprint: a full u64 travels as hex
            // text, never as a (lossy) JSON number.
            DatasetRef::Fp(fp) => ("fp", Json::Str(format!("{fp:016x}"))),
        };
        Json::obj(vec![
            ("cmd", Json::Str(cmd.into())),
            dataset,
            ("algo", Json::Str(self.algo.clone())),
            ("tester", Json::Str(self.tester.clone())),
            ("alpha", Json::Num(self.alpha)),
            ("workers", Json::Num(self.workers as f64)),
            ("max_group", self.max_group.to_json()),
            ("speculate", Json::Bool(self.speculate)),
            ("train_frac", Json::Num(self.train_frac)),
            // Seeds are full u64s; JSON numbers are f64 and would silently
            // round seeds above 2^53 — travel as a decimal string instead,
            // like the fingerprint.
            ("seed", Json::Str(self.seed.to_string())),
            ("classifier", Json::Str(self.classifier.clone())),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let d = WorkloadRequest::default();
        let seed = match v.get("seed") {
            None => d.seed,
            Some(Json::Str(s)) => s.parse::<u64>().map_err(|_| format!("bad seed: {s:?}"))?,
            // Tolerate small integer seeds from hand-written clients.
            Some(Json::Num(_)) => v.get_u64("seed").ok_or("bad seed: not a u64")?,
            Some(other) => return Err(format!("bad seed: {other}")),
        };
        let dataset = match (v.get_str("fp"), v.get_str("csv")) {
            (Some(hex), _) => DatasetRef::Fp(
                u64::from_str_radix(hex, 16).map_err(|_| format!("bad fp: {hex:?}"))?,
            ),
            (None, Some(text)) => DatasetRef::Csv(text.to_owned()),
            (None, None) => return Err("missing csv or fp".into()),
        };
        Ok(WorkloadRequest {
            dataset,
            algo: v.get_str("algo").unwrap_or(&d.algo).to_owned(),
            tester: v.get_str("tester").unwrap_or(&d.tester).to_owned(),
            alpha: v.get_num("alpha").unwrap_or(d.alpha),
            workers: v.get_u64("workers").unwrap_or(d.workers as u64) as usize,
            max_group: MaxGroupSpec::from_json(v.get("max_group"))?,
            speculate: v.get_bool("speculate").unwrap_or(d.speculate),
            train_frac: v.get_num("train_frac").unwrap_or(d.train_frac),
            seed,
            classifier: v.get_str("classifier").unwrap_or(&d.classifier).to_owned(),
        })
    }
}

/// A parsed request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    Select(WorkloadRequest),
    Methods(WorkloadRequest),
    /// Dataset upload announcement. On the wire the `{"cmd":"put"}` frame
    /// is immediately followed by one **raw binary frame** holding the
    /// `fairsel_table::codec` payload — the payload is never JSON-encoded.
    Put,
    /// Streaming append: extend the dataset fingerprinted `fp` with a row
    /// batch. Like [`Request::Put`], the JSON frame is immediately
    /// followed by one **raw binary frame** — the `FSA1` append payload
    /// (`fairsel_table::codec::encode_row_batch`). Responds with the
    /// child dataset's fingerprint.
    Append {
        fp: u64,
    },
    Stats,
    /// The last `last` completed trace spans, most recent last. The
    /// response's `stats` object carries `spans` (an array of span
    /// objects) and `spans_dropped`.
    Trace {
        last: usize,
    },
    Ping,
    Shutdown,
}

/// Default span count for `{"cmd":"trace"}` without a `last` field.
pub const DEFAULT_TRACE_LAST: usize = 64;

impl Request {
    pub fn to_json(&self) -> Json {
        match self {
            Request::Select(w) => w.to_json_fields("select"),
            Request::Methods(w) => w.to_json_fields("methods"),
            Request::Put => Json::obj(vec![("cmd", Json::Str("put".into()))]),
            Request::Append { fp } => Json::obj(vec![
                ("cmd", Json::Str("append".into())),
                ("fp", Json::Str(format!("{fp:016x}"))),
            ]),
            Request::Stats => Json::obj(vec![("cmd", Json::Str("stats".into()))]),
            Request::Trace { last } => Json::obj(vec![
                ("cmd", Json::Str("trace".into())),
                ("last", Json::Num(*last as f64)),
            ]),
            Request::Ping => Json::obj(vec![("cmd", Json::Str("ping".into()))]),
            Request::Shutdown => Json::obj(vec![("cmd", Json::Str("shutdown".into()))]),
        }
    }

    pub fn from_json(v: &Json) -> Result<Request, String> {
        match v.get_str("cmd") {
            Some("select") => Ok(Request::Select(WorkloadRequest::from_json(v)?)),
            Some("methods") => Ok(Request::Methods(WorkloadRequest::from_json(v)?)),
            Some("put") => Ok(Request::Put),
            Some("append") => {
                let hex = v.get_str("fp").ok_or("append missing fp")?;
                let fp = u64::from_str_radix(hex, 16).map_err(|_| format!("bad fp: {hex:?}"))?;
                Ok(Request::Append { fp })
            }
            Some("stats") => Ok(Request::Stats),
            Some("trace") => Ok(Request::Trace {
                last: v.get_u64("last").unwrap_or(DEFAULT_TRACE_LAST as u64) as usize,
            }),
            Some("ping") => Ok(Request::Ping),
            Some("shutdown") => Ok(Request::Shutdown),
            Some(other) => Err(format!("unknown cmd: {other}")),
            None => Err("missing cmd".into()),
        }
    }
}

/// Per-dataset shared-cache telemetry attached to a workload response.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheInfo {
    /// Dataset fingerprint (hash of schema + column data).
    pub fingerprint: u64,
    /// Requests this dataset entry has served (including this one).
    pub sessions_served: u64,
    /// Cumulative CI outcomes answered from the shared session memo.
    pub shared_hits: u64,
    /// Cumulative encoding-layer cache hits.
    pub encode_hits: u64,
    /// Cumulative encoding-layer cache misses.
    pub encode_misses: u64,
    /// Cumulative encoding-layer evictions (LRU bound).
    pub encode_evictions: u64,
    /// Dataset entries evicted from the registry since startup.
    pub dataset_evictions: u64,
}

impl CacheInfo {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "fingerprint",
                Json::Str(format!("{:016x}", self.fingerprint)),
            ),
            ("sessions_served", Json::Num(self.sessions_served as f64)),
            ("shared_hits", Json::Num(self.shared_hits as f64)),
            ("encode_hits", Json::Num(self.encode_hits as f64)),
            ("encode_misses", Json::Num(self.encode_misses as f64)),
            ("encode_evictions", Json::Num(self.encode_evictions as f64)),
            (
                "dataset_evictions",
                Json::Num(self.dataset_evictions as f64),
            ),
        ])
    }

    pub fn from_json(v: &Json) -> Option<CacheInfo> {
        Some(CacheInfo {
            fingerprint: u64::from_str_radix(v.get_str("fingerprint")?, 16).ok()?,
            sessions_served: v.get_u64("sessions_served")?,
            shared_hits: v.get_u64("shared_hits")?,
            encode_hits: v.get_u64("encode_hits")?,
            encode_misses: v.get_u64("encode_misses")?,
            encode_evictions: v.get_u64("encode_evictions")?,
            dataset_evictions: v.get_u64("dataset_evictions")?,
        })
    }
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    Ok {
        /// Rendered text body (deterministic part of the output).
        body: String,
        /// Engine/server telemetry object (request-dependent).
        stats: Option<Json>,
        /// Shared-cache telemetry for workload requests.
        cache: Option<CacheInfo>,
    },
    /// The `--max-conns` admission cap shed this connection before any
    /// request was read: the workload was not rejected, the server is
    /// full — retry later or fall back to local execution.
    Busy,
    Err(String),
}

impl Response {
    pub fn ok(body: impl Into<String>) -> Response {
        Response::Ok {
            body: body.into(),
            stats: None,
            cache: None,
        }
    }

    pub fn to_json(&self) -> Json {
        match self {
            Response::Ok { body, stats, cache } => {
                let mut pairs = vec![("ok", Json::Bool(true)), ("body", Json::Str(body.clone()))];
                if let Some(s) = stats {
                    pairs.push(("stats", s.clone()));
                }
                if let Some(c) = cache {
                    pairs.push(("cache", c.to_json()));
                }
                Json::obj(pairs)
            }
            Response::Busy => Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("busy", Json::Bool(true)),
                (
                    "error",
                    Json::Str("server busy: connection limit reached".into()),
                ),
            ]),
            Response::Err(e) => Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::Str(e.clone())),
            ]),
        }
    }

    pub fn from_json(v: &Json) -> Result<Response, String> {
        match v.get_bool("ok") {
            Some(true) => Ok(Response::Ok {
                body: v.get_str("body").unwrap_or("").to_owned(),
                stats: v.get("stats").cloned(),
                cache: v.get("cache").and_then(CacheInfo::from_json),
            }),
            Some(false) if v.get_bool("busy") == Some(true) => Ok(Response::Busy),
            Some(false) => Ok(Response::Err(
                v.get_str("error").unwrap_or("unknown error").to_owned(),
            )),
            None => Err("response missing ok field".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn truncated_frame_is_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err(), "mid-frame EOF is not clean");
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Select(WorkloadRequest {
                dataset: DatasetRef::Csv("s:cat2[sensitive],y:cat2[target]\n0,1\n".into()),
                algo: "seqsel".into(),
                tester: "fisherz".into(),
                alpha: 0.05,
                workers: 4,
                max_group: MaxGroupSpec::Auto,
                speculate: true,
                train_frac: 0.8,
                // Above 2^53: would corrupt silently if sent as a JSON
                // number.
                seed: u64::MAX - 12345,
                classifier: "tree".into(),
            }),
            // A fingerprint-addressed workload: a full u64 fingerprint
            // (high bit set) travels as hex text.
            Request::Select(WorkloadRequest {
                dataset: DatasetRef::Fp(0xfeed_beef_8000_0001),
                ..Default::default()
            }),
            Request::Methods(WorkloadRequest {
                dataset: DatasetRef::Csv("x".into()),
                max_group: MaxGroupSpec::Width(6),
                ..Default::default()
            }),
            Request::Put,
            // A full-u64 fingerprint (high bit set) must survive the hex
            // round trip on append too.
            Request::Append {
                fp: 0xfeed_beef_8000_0001,
            },
            Request::Stats,
            Request::Trace { last: 200 },
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            let j = req.to_json();
            let text = j.to_string();
            let back = Request::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(req, back);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Ok {
                body: "== selection ==\nline\n".into(),
                stats: Some(Json::obj(vec![("issued", Json::Num(7.0))])),
                cache: Some(CacheInfo {
                    fingerprint: 0xdead_beef_0123_4567,
                    sessions_served: 2,
                    shared_hits: 41,
                    encode_hits: 10,
                    encode_misses: 3,
                    encode_evictions: 1,
                    dataset_evictions: 0,
                }),
            },
            Response::ok("pong"),
            Response::Busy,
            Response::Err("bad csv".into()),
        ];
        for resp in resps {
            let text = resp.to_json().to_string();
            let back = Response::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(resp, back);
        }
    }

    #[test]
    fn trace_without_last_uses_default() {
        let v = Json::parse(r#"{"cmd":"trace"}"#).unwrap();
        assert_eq!(
            Request::from_json(&v).unwrap(),
            Request::Trace {
                last: DEFAULT_TRACE_LAST
            }
        );
    }

    #[test]
    fn unknown_cmd_rejected() {
        let v = Json::parse(r#"{"cmd":"explode"}"#).unwrap();
        assert!(Request::from_json(&v).is_err());
        let v = Json::parse(r#"{"cmd":"select"}"#).unwrap();
        assert!(
            Request::from_json(&v).is_err(),
            "select without csv and fp must be rejected"
        );
        let v = Json::parse(r#"{"cmd":"select","fp":"not hex"}"#).unwrap();
        assert!(Request::from_json(&v).is_err(), "malformed fp rejected");
        let v = Json::parse(r#"{"cmd":"append"}"#).unwrap();
        assert!(
            Request::from_json(&v).is_err(),
            "append without fp must be rejected"
        );
        let v = Json::parse(r#"{"cmd":"append","fp":"zz"}"#).unwrap();
        assert!(Request::from_json(&v).is_err(), "malformed append fp");
    }

    /// The busy response is structurally distinguishable from a plain
    /// error: clients must be able to tell "server full, retry later"
    /// apart from "request rejected".
    #[test]
    fn busy_response_is_structured() {
        let text = Response::Busy.to_json().to_string();
        assert!(text.contains("\"busy\":true"), "{text}");
        assert!(text.contains("\"ok\":false"), "{text}");
        let back = Response::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, Response::Busy);
        // A plain error without the busy marker stays an Err.
        let plain = Response::Err("busy".into()).to_json().to_string();
        let back = Response::from_json(&Json::parse(&plain).unwrap()).unwrap();
        assert_eq!(back, Response::Err("busy".into()));
    }

    /// A warm fingerprint-addressed `select` frame must stay tiny — the
    /// point of `put` is that repeat requests ship bytes, not megabytes.
    #[test]
    fn fp_addressed_select_frame_is_under_1_kib() {
        let req = Request::Select(WorkloadRequest {
            dataset: DatasetRef::Fp(u64::MAX),
            max_group: MaxGroupSpec::Auto,
            speculate: true,
            ..Default::default()
        });
        let frame_bytes = req.to_json().to_string().len() + 4;
        assert!(frame_bytes < 1024, "fp select frame is {frame_bytes} bytes");
    }
}
