//! `fairsel-server` — the long-lived session service.
//!
//! PR 1 built the memoizing [`fairsel_engine::CiSession`] and PR 2 the
//! columnar `EncodedTable`, but both lived and died with a single process:
//! repeated workloads from many clients re-paid every encoding pass and
//! every CI test. This crate keeps them alive across requests — the
//! ROADMAP's "millions of users" direction:
//!
//! * [`registry`] — workload state sharded by *dataset fingerprint* (a
//!   stable hash of schema + column data): one shared `EncodedTable` and
//!   one memoizing `CiSession` per (dataset, split, tester) — LRU-bounded,
//!   with eviction counters;
//! * [`proto`] — the wire protocol: length-prefixed JSON frames carrying
//!   `select` / `methods` / `stats` / `ping` / `shutdown` requests, with
//!   per-dataset cache telemetry in every workload response;
//! * [`server`] — a std-only `TcpListener` accept loop (one thread per
//!   connection) plus the one-shot [`request`] client the CLI's
//!   `--remote` flag and the bench harness use;
//! * [`json`] — the minimal JSON value/parser backing all of it (the
//!   workspace is offline; no serde).
//!
//! The service's core guarantee, property-tested in `fairsel-tests` and
//! asserted again by the CI smoke step: a remote `select` body is
//! **byte-identical** to a local run of the same workload, and a warm
//! repeat reports nonzero shared-cache hits while issuing zero new CI
//! tests.

pub mod json;
pub mod prom;
pub mod proto;
pub mod registry;
pub mod server;

pub use json::{Json, JsonError};
pub use prom::render_prom;
pub use proto::{CacheInfo, DatasetRef, MaxGroupSpec, Request, Response, WorkloadRequest};
pub use registry::{fingerprint_table, pipeline_config, Registry, RegistryConfig};
pub use server::{
    append_rows, default_conn_workers, put_dataset, request, request_raw, ServeConfig, Server,
    ServerHandle,
};
