//! A minimal JSON value type with a recursive-descent parser and a
//! serializer — the wire format of the session service.
//!
//! The workspace is offline (no serde); the engine already *emits* JSON by
//! hand for `BENCH_*.json`, and the server additionally needs to *parse*
//! requests. This module is deliberately small: objects preserve insertion
//! order (`Vec` of pairs, first key wins on lookup), numbers are `f64`
//! (integers round-trip exactly up to 2⁵³ — ample for row counts and
//! counters; 64-bit fingerprints travel as hex strings), strings support
//! the standard escapes including `\uXXXX` (surrogate pairs included).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Field as `&str`.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Field as `f64`.
    pub fn get_num(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Field as `u64` (rejects negatives, non-integers, and values above
    /// 2⁵³ — the largest magnitude below which every integer is exactly
    /// representable as an `f64`). Known edge at the bound itself: a
    /// document spelling out 2⁵³ + 1 parses to the same `f64` as 2⁵³ and
    /// is therefore accepted as 2⁵³; values that must survive beyond
    /// 2⁵³ (seeds, fingerprints) travel as strings on this protocol.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        let n = self.get_num(key)?;
        (n >= 0.0 && n.fract() == 0.0 && n <= MAX_SAFE_INTEGER).then_some(n as u64)
    }

    /// Field as `bool`.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key)? {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience constructor for an object.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing non-whitespace is an
    /// error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

/// Serialization: `to_string()` yields compact JSON text.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// 2⁵³ — integers up to this magnitude are exactly representable as
/// `f64`; the serializer and [`Json::get_u64`] agree on this bound.
const MAX_SAFE_INTEGER: f64 = 9_007_199_254_740_992.0;

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; clamp to null (never produced by our
        // telemetry, but don't emit invalid documents).
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= MAX_SAFE_INTEGER {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Round-trip precision for telemetry floats.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        other => return Err(self.err(format!("bad escape \\{}", other as char))),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number {s:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Json::obj(vec![
            ("cmd", Json::Str("select".into())),
            ("alpha", Json::Num(0.01)),
            ("workers", Json::Num(4.0)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "arr",
                Json::Arr(vec![Json::Num(1.0), Json::Str("x".into())]),
            ),
        ]);
        let text = v.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(back.get_str("cmd"), Some("select"));
        assert_eq!(back.get_num("alpha"), Some(0.01));
        assert_eq!(back.get_u64("workers"), Some(4));
        assert_eq!(back.get_bool("ok"), Some(true));
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "newline\nand\ttab",
            "unicode: é ☃ 𝄞",
            "control \u{1} char",
            "csv,header:cat2[sensitive]\n0,1\n",
        ] {
            let text = Json::Str(s.to_owned()).to_string();
            assert_eq!(
                Json::parse(&text).unwrap(),
                Json::Str(s.to_owned()),
                "{s:?}"
            );
        }
        // Standard escapes parse, including surrogate pairs.
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\\ud834\\udd1e\\/\"").unwrap(),
            Json::Str("Aé𝄞/".into())
        );
    }

    #[test]
    fn numbers_round_trip() {
        for n in [
            0.0,
            -1.0,
            42.0,
            0.25,
            -17.5,
            1e-9,
            std::f64::consts::PI,
            8.0e15,
        ] {
            let text = Json::Num(n).to_string();
            assert_eq!(Json::parse(&text).unwrap(), Json::Num(n), "{n}");
        }
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("-2.5E-2").unwrap(), Json::Num(-0.025));
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
    }

    /// Regression: `get_u64` once capped at 9.0e15, rejecting valid
    /// exactly-representable integers in (9.0e15, 2⁵³]. The bound is 2⁵³
    /// in both directions: everything at or below it is accepted (and
    /// serialized as a plain integer), everything above is rejected
    /// (f64 can no longer represent every integer, so a round trip would
    /// be ambiguous).
    #[test]
    fn get_u64_accepts_up_to_2_pow_53_and_rejects_beyond() {
        const MAX_SAFE: u64 = 1 << 53;
        // In (9.0e15, 2^53]: previously rejected, now valid.
        for v in [9_000_000_000_000_001u64, MAX_SAFE - 1, MAX_SAFE] {
            let text = format!("{{\"v\":{v}}}");
            let parsed = Json::parse(&text).unwrap();
            assert_eq!(parsed.get_u64("v"), Some(v), "{v} must be accepted");
            // And the serializer emits it back as a plain integer.
            assert_eq!(Json::Num(v as f64).to_string(), v.to_string());
        }
        // Above 2^53: the nearest representable f64 integers must be
        // rejected even though `fract() == 0`.
        for text in ["9007199254740994", "9.1e15 ", "18446744073709551615"] {
            let parsed = Json::parse(&format!("{{\"v\":{}}}", text.trim())).unwrap();
            let expect = text.trim().parse::<f64>().unwrap() <= (MAX_SAFE as f64);
            assert_eq!(
                parsed.get_u64("v").is_some(),
                expect,
                "{text} acceptance must match the 2^53 bound"
            );
        }
        assert_eq!(
            Json::parse("{\"v\":9007199254740994}")
                .unwrap()
                .get_u64("v"),
            None,
            "2^53 + 2 must be rejected"
        );
        // Negatives and fractions stay rejected.
        assert_eq!(Json::parse("{\"v\":-1}").unwrap().get_u64("v"), None);
        assert_eq!(Json::parse("{\"v\":1.5}").unwrap().get_u64("v"), None);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "nul",
            "\"bad \\q escape\"",
            "\"\\ud834\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn nested_objects_and_lookup() {
        let v = Json::parse(r#"{"a":{"b":[1,2,{"c":true}]},"a":"shadowed"}"#).unwrap();
        // First key wins.
        assert!(matches!(v.get("a"), Some(Json::Obj(_))));
        let arr = v.get("a").unwrap().get("b").unwrap();
        match arr {
            Json::Arr(items) => assert_eq!(items.len(), 3),
            _ => panic!("expected array"),
        }
    }
}
