//! Descriptive statistics over `f64` slices: moments, quantiles,
//! correlation, and standardization. Used by the featurizer, the CI
//! testers (median heuristic for RCIT bandwidths), and the experiment
//! harnesses.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (normalized by `n`). Returns 0.0 for len < 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Sample covariance of two equal-length slices (normalized by `n`).
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / xs.len() as f64
}

/// Pearson correlation coefficient; 0.0 if either side is constant.
///
/// Fused two-pass kernel: one joint sweep for both means, one for the
/// three second moments. Each running sum still visits elements in the
/// same ascending order as the separate `std_dev`/`covariance` passes,
/// so the result is bit-identical to [`pearson_naive`] while the slice
/// traffic drops from eight sweeps to four — the dominant cost at the
/// row counts the Fisher-z tester feeds this (a correlation is
/// memory-bound: ~3 FLOPs per 16 bytes read).
///
/// # Panics
/// Panics on a length mismatch.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if crate::linalg::naive_kernels() {
        return pearson_naive(xs, ys);
    }
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let nf = xs.len() as f64;
    let (mut sx, mut sy) = (0.0f64, 0.0f64);
    // order: row index ascending, one fused pass per moment set — the
    // same element order as the unfused baseline, so the fusion is
    // bit-identical (reassociating either sum is the known dead end).
    for (&x, &y) in xs.iter().zip(ys) {
        sx += x;
        sy += y;
    }
    let (mx, my) = (sx / nf, sy / nf);
    let (mut vxx, mut vyy, mut vxy) = (0.0f64, 0.0f64, 0.0f64);
    // order: row index ascending for all three centered moments.
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        vxx += dx * dx;
        vyy += dy * dy;
        vxy += dx * dy;
    }
    let sdx = (vxx / nf).sqrt();
    let sdy = (vyy / nf).sqrt();
    if sdx == 0.0 || sdy == 0.0 {
        return 0.0;
    }
    ((vxy / nf) / (sdx * sdy)).clamp(-1.0, 1.0)
}

/// Pre-fusion reference for [`pearson`]: separate `std_dev` and
/// `covariance` passes over each slice. Bit-identical to the fused
/// kernel; kept as the baseline behind
/// [`crate::linalg::set_naive_kernels`] for benchmarks and the
/// byte-identity property tests.
pub fn pearson_naive(xs: &[f64], ys: &[f64]) -> f64 {
    let sx = std_dev(xs);
    let sy = std_dev(ys);
    if sx == 0.0 || sy == 0.0 {
        return 0.0;
    }
    (covariance(xs, ys) / (sx * sy)).clamp(-1.0, 1.0)
}

/// `q`-quantile (0 ≤ q ≤ 1) with linear interpolation, like numpy's default.
///
/// # Panics
/// Panics on an empty slice or `q` outside [0, 1].
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile: empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile: q={q} outside [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantile: NaN in data"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (0.5-quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Standardize in place to zero mean / unit variance; constant columns are
/// centered only. Returns `(mean, std)` so test data can reuse the fit.
pub fn standardize(xs: &mut [f64]) -> (f64, f64) {
    let m = mean(xs);
    let s = std_dev(xs);
    if s > 0.0 {
        for x in xs.iter_mut() {
            *x = (*x - m) / s;
        }
    } else {
        for x in xs.iter_mut() {
            *x -= m;
        }
    }
    (m, s)
}

/// Median of pairwise Euclidean distances between up to `cap` rows of a
/// flattened `n × d` row-major buffer — the RCIT kernel-bandwidth
/// ("median") heuristic. Returns 1.0 if all distances are zero.
pub fn median_pairwise_distance(data: &[f64], n: usize, d: usize, cap: usize) -> f64 {
    assert_eq!(data.len(), n * d, "median_pairwise_distance: bad shape");
    let m = n.min(cap);
    if m < 2 {
        return 1.0;
    }
    let mut dists = Vec::with_capacity(m * (m - 1) / 2);
    for i in 0..m {
        for j in (i + 1)..m {
            let mut acc = 0.0;
            // order: feature index k ascending per pair distance.
            for k in 0..d {
                let diff = data[i * d + k] - data[j * d + k];
                acc += diff * diff;
            }
            dists.push(acc.sqrt());
        }
    }
    let med = median(&dists);
    if med > 0.0 {
        med
    } else {
        1.0
    }
}

/// Argmax over a slice, breaking ties towards the lower index.
///
/// # Panics
/// Panics on an empty slice.
pub fn argmax(xs: &[f64]) -> usize {
    assert!(!xs.is_empty(), "argmax: empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn mean_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_close!(mean(&xs), 2.5, 1e-12);
        assert_close!(variance(&xs), 1.25, 1e-12);
        assert_close!(std_dev(&xs), 1.25f64.sqrt(), 1e-12);
    }

    #[test]
    fn empty_and_singleton_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn covariance_and_pearson() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert_close!(pearson(&xs, &ys), 1.0, 1e-12);
        let ys_neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert_close!(pearson(&xs, &ys_neg), -1.0, 1e-12);
        let constant = [3.0; 4];
        assert_eq!(pearson(&xs, &constant), 0.0);
    }

    #[test]
    fn pearson_fused_bits_match_naive() {
        // Awkward magnitudes so any reassociation in the fused sweeps
        // would flip low-order bits.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let xs: Vec<f64> = (0..1000).map(|i| next() * 1e6 + i as f64 * 1e-7).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * 0.3 + next() * 1e5 - 5e4).collect();
        assert_eq!(
            pearson(&xs, &ys).to_bits(),
            pearson_naive(&xs, &ys).to_bits()
        );
        // Degenerate shapes agree too.
        assert_eq!(pearson(&[], &[]), pearson_naive(&[], &[]));
        assert_eq!(pearson(&[1.0], &[2.0]), pearson_naive(&[1.0], &[2.0]));
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_close!(quantile(&xs, 0.0), 1.0, 1e-12);
        assert_close!(quantile(&xs, 1.0), 4.0, 1e-12);
        assert_close!(median(&xs), 2.5, 1e-12);
        assert_close!(quantile(&xs, 0.25), 1.75, 1e-12);
    }

    #[test]
    fn quantile_order_insensitive() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_close!(median(&xs), 2.5, 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn standardize_gives_zero_mean_unit_var() {
        let mut xs = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        let (m, s) = standardize(&mut xs);
        assert_close!(m, 30.0, 1e-12);
        assert!(s > 0.0);
        assert_close!(mean(&xs), 0.0, 1e-12);
        assert_close!(variance(&xs), 1.0, 1e-12);
    }

    #[test]
    fn standardize_constant_column() {
        let mut xs = vec![7.0; 5];
        let (_, s) = standardize(&mut xs);
        assert_eq!(s, 0.0);
        assert!(xs.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn median_pairwise_distance_simple() {
        // Three collinear points 0, 3, 4 -> distances {3, 4, 1}, median 3.
        let data = [0.0, 3.0, 4.0];
        assert_close!(median_pairwise_distance(&data, 3, 1, 100), 3.0, 1e-12);
    }

    #[test]
    fn median_pairwise_distance_degenerate() {
        let data = [1.0, 1.0, 1.0];
        assert_eq!(median_pairwise_distance(&data, 3, 1, 100), 1.0);
        assert_eq!(median_pairwise_distance(&data[..1], 1, 1, 100), 1.0);
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }
}
