//! Numerics substrate for the fairsel workspace.
//!
//! Everything the reproduction needs that would normally come from SciPy /
//! R is implemented here from scratch so the rest of the workspace stays
//! dependency-free:
//!
//! * [`special`] — log-gamma, regularized incomplete gamma, error function,
//!   and the chi-square / gamma / normal CDFs built on top of them. These
//!   power every p-value computed by the conditional-independence testers.
//! * [`linalg`] — a small dense row-major matrix type with the operations
//!   the RCIT test and the classifiers need (matmul, Cholesky, SPD solves,
//!   ridge regression, covariance).
//! * [`dist`] — sampling distributions that `rand` itself does not ship:
//!   standard normal (Box–Muller with caching), gamma (Marsaglia–Tsang),
//!   Dirichlet, and a Walker alias table for fast categorical sampling
//!   inside the SCM ancestral sampler.
//! * [`stats`] — descriptive statistics (mean, variance, median/quantile,
//!   standardization) used by featurizers and test harnesses.

pub mod dist;
pub mod linalg;
pub mod special;
pub mod stats;

pub use linalg::{naive_kernels, set_naive_kernels, Mat};

/// Convergence tolerance shared by the iterative special-function routines.
pub(crate) const EPS: f64 = 1e-14;

/// Assert two floats are within `tol`, with a useful failure message.
///
/// Exposed so downstream crates' tests can reuse it.
#[macro_export]
macro_rules! assert_close {
    ($a:expr, $b:expr, $tol:expr) => {{
        let (a, b, tol) = ($a as f64, $b as f64, $tol as f64);
        assert!(
            (a - b).abs() <= tol,
            "assert_close failed: {a} vs {b} (|diff| = {} > tol {tol})",
            (a - b).abs()
        );
    }};
}
