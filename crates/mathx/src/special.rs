//! Special functions: log-gamma, regularized incomplete gamma, error
//! function, and the distribution CDFs derived from them.
//!
//! All conditional-independence testers in `fairsel-ci` reduce their test
//! statistics to a chi-square, gamma, or normal tail probability, so the
//! quality of these routines directly controls the reproduction's p-values.
//! Implementations follow the classical series / continued-fraction
//! decomposition (Numerical Recipes §6.1-6.2) with a Lanczos approximation
//! for `ln Γ`.

use crate::EPS;

/// Lanczos coefficients (g = 7, n = 9), accurate to ~1e-15 over the real line.
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
///
/// # Panics
/// Panics if `x` is NaN or `x <= 0` after reflection would be required at a
/// pole (non-positive integers).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(!x.is_nan(), "ln_gamma: NaN input");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx)
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        assert!(
            sin_pi_x != 0.0,
            "ln_gamma: pole at non-positive integer {x}"
        );
        return std::f64::consts::PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0`, `P(a, ∞) = 1`. Uses the series expansion for `x < a + 1`
/// and the continued fraction for the complement otherwise, which keeps both
/// branches rapidly convergent.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p: shape must be positive, got {a}");
    assert!(x >= 0.0, "gamma_p: x must be non-negative, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_contfrac(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q: shape must be positive, got {a}");
    assert!(x >= 0.0, "gamma_q: x must be non-negative, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_contfrac(a, x)
    }
}

/// Series representation of P(a, x); converges fast for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction (modified Lentz) representation of Q(a, x).
fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Error function `erf(x)`, via the incomplete gamma identity
/// `erf(x) = sign(x) · P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`, with a stable tail.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x).max(0.0)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// CDF of the standard normal distribution.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Two-sided p-value for a standard-normal test statistic.
pub fn normal_two_sided_p(z: f64) -> f64 {
    (erfc(z.abs() / std::f64::consts::SQRT_2)).clamp(0.0, 1.0)
}

/// CDF of the chi-square distribution with `df` degrees of freedom.
pub fn chi2_cdf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "chi2_cdf: df must be positive, got {df}");
    if x <= 0.0 {
        return 0.0;
    }
    gamma_p(df / 2.0, x / 2.0)
}

/// Survival function (upper tail) of the chi-square distribution; this is
/// the p-value of a chi-square / G test statistic.
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "chi2_sf: df must be positive, got {df}");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(df / 2.0, x / 2.0)
}

/// CDF of a gamma distribution with `shape` and `scale` (mean = shape·scale).
pub fn gamma_cdf(x: f64, shape: f64, scale: f64) -> f64 {
    assert!(scale > 0.0, "gamma_cdf: scale must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    gamma_p(shape, x / scale)
}

/// Survival function of the gamma distribution (used by the RCIT
/// Satterthwaite–Welch approximation).
pub fn gamma_sf(x: f64, shape: f64, scale: f64) -> f64 {
    assert!(scale > 0.0, "gamma_sf: scale must be positive");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(shape, x / scale)
}

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// |ε| < 1.15e-9), refined with one Halley step.
///
/// # Panics
/// Panics unless `0 < p < 1`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile: p must be in (0,1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    let x = if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step against the true CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Fisher z-transform of a correlation coefficient: `atanh(r)`.
///
/// Saturates rather than panicking for |r| marginally ≥ 1 (which occurs with
/// degenerate columns in partial-correlation testing).
pub fn fisher_z(r: f64) -> f64 {
    let r = r.clamp(-0.999_999_999, 0.999_999_999);
    0.5 * ((1.0 + r) / (1.0 - r)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert_close!(ln_gamma(n as f64), fact.ln(), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        assert_close!(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = √π / 2
        assert_close!(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12
        );
    }

    #[test]
    fn ln_gamma_reflection_branch() {
        // Γ(0.25)Γ(0.75) = π / sin(π/4) = π√2
        let lhs = ln_gamma(0.25) + ln_gamma(0.75);
        let rhs = (std::f64::consts::PI * std::f64::consts::SQRT_2).ln();
        assert_close!(lhs, rhs, 1e-10);
    }

    #[test]
    #[should_panic(expected = "pole")]
    fn ln_gamma_pole_panics() {
        ln_gamma(0.0);
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &a in &[0.3, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 60.0] {
                assert_close!(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-10);
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // For a = 1 the gamma distribution is Exp(1): P(1, x) = 1 - e^{-x}.
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            assert_close!(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn gamma_p_boundaries() {
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert_eq!(gamma_q(2.0, 0.0), 1.0);
        assert!(gamma_p(2.0, 1e6) > 1.0 - 1e-12);
    }

    #[test]
    fn chi2_known_values() {
        // Median of chi2(1) ≈ 0.4549; SciPy chi2.cdf reference values.
        assert_close!(chi2_cdf(0.454_936, 1.0), 0.5, 1e-5);
        assert_close!(chi2_cdf(3.841_458_8, 1.0), 0.95, 1e-6);
        assert_close!(chi2_cdf(5.991_464_5, 2.0), 0.95, 1e-6);
        assert_close!(chi2_cdf(18.307_038, 10.0), 0.95, 1e-6);
        assert_close!(chi2_sf(3.841_458_8, 1.0), 0.05, 1e-6);
    }

    #[test]
    fn chi2_cdf_monotone_in_x() {
        let mut last = 0.0;
        for i in 0..200 {
            let x = i as f64 * 0.25;
            let v = chi2_cdf(x, 5.0);
            assert!(v >= last - 1e-15, "chi2_cdf must be monotone");
            last = v;
        }
    }

    #[test]
    fn erf_known_values() {
        assert_close!(erf(0.0), 0.0, 1e-15);
        assert_close!(erf(1.0), 0.842_700_792_949_715, 1e-9);
        assert_close!(erf(-1.0), -0.842_700_792_949_715, 1e-9);
        assert_close!(erf(2.0), 0.995_322_265_018_953, 1e-9);
        assert_close!(erfc(1.0), 0.157_299_207_050_285, 1e-9);
    }

    #[test]
    fn normal_cdf_symmetry_and_known_values() {
        assert_close!(normal_cdf(0.0), 0.5, 1e-12);
        assert_close!(normal_cdf(1.959_963_985), 0.975, 1e-8);
        assert_close!(normal_cdf(-1.959_963_985), 0.025, 1e-8);
        for &z in &[0.1, 0.7, 1.3, 2.8] {
            assert_close!(normal_cdf(z) + normal_cdf(-z), 1.0, 1e-12);
        }
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.1, 0.3, 0.5, 0.7, 0.9, 0.975, 0.999] {
            assert_close!(normal_cdf(normal_quantile(p)), p, 1e-10);
        }
    }

    #[test]
    fn gamma_cdf_scale_invariance() {
        // X ~ Gamma(k, θ)  ⇒  X/θ ~ Gamma(k, 1)
        assert_close!(gamma_cdf(6.0, 2.0, 3.0), gamma_cdf(2.0, 2.0, 1.0), 1e-12);
        assert_close!(
            gamma_sf(6.0, 2.0, 3.0),
            1.0 - gamma_cdf(6.0, 2.0, 3.0),
            1e-12
        );
    }

    #[test]
    fn fisher_z_roundtrip() {
        for &r in &[-0.9, -0.5, 0.0, 0.3, 0.77] {
            assert_close!(fisher_z(r).tanh(), r, 1e-12);
        }
        // Saturation instead of infinity.
        assert!(fisher_z(1.0).is_finite());
        assert!(fisher_z(-1.0).is_finite());
    }

    #[test]
    fn two_sided_p_matches_tails() {
        for &z in &[0.5, 1.0, 1.96, 3.0] {
            let p = normal_two_sided_p(z);
            assert_close!(p, 2.0 * (1.0 - normal_cdf(z)), 1e-10);
            assert_close!(normal_two_sided_p(-z), p, 1e-12);
        }
    }
}
