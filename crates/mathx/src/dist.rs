//! Sampling distributions not provided by `rand` itself.
//!
//! The SCM sampler draws billions of categorical values when generating the
//! 5000-node synthetic graphs from §5.3 of the paper, so categorical
//! sampling uses a Walker alias table (O(1) per draw after O(k) setup).
//! Gamma variates (Marsaglia–Tsang) exist to build Dirichlet-distributed
//! CPT rows with controllable concentration, which is how "bias strength"
//! of an edge is tuned in the synthetic generators.

use rand::Rng;

/// Draw a standard normal variate via the Box–Muller transform.
///
/// Stateless (no cached second value) to stay `Rng`-generic and simple;
/// the workspace's normal draws are never the bottleneck.
pub fn sample_std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would send ln to -inf.
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draw `N(mu, sigma²)`.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "sample_normal: sigma must be non-negative");
    mu + sigma * sample_std_normal(rng)
}

/// Draw a Gamma(shape, 1) variate using the Marsaglia–Tsang squeeze method,
/// with the standard boost for shape < 1.
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(
        shape > 0.0,
        "sample_gamma: shape must be positive, got {shape}"
    );
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}
        let u: f64 = loop {
            let u: f64 = rng.gen();
            if u > 0.0 {
                break u;
            }
        };
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_std_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen();
        let x2 = x * x;
        if u < 1.0 - 0.0331 * x2 * x2 {
            return d * v;
        }
        if u > 0.0 && u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Draw a Dirichlet(α₁..α_k) sample: a random probability vector.
///
/// Small concentrations give near-deterministic (spiky) rows — used for
/// strong causal edges; large concentrations give near-uniform rows.
pub fn sample_dirichlet<R: Rng + ?Sized>(rng: &mut R, alphas: &[f64]) -> Vec<f64> {
    assert!(!alphas.is_empty(), "sample_dirichlet: empty alphas");
    let mut draws: Vec<f64> = alphas.iter().map(|&a| sample_gamma(rng, a)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 {
        // Degenerate (all gammas underflowed): fall back to uniform.
        let k = alphas.len() as f64;
        return vec![1.0 / k; alphas.len()];
    }
    for d in &mut draws {
        *d /= sum;
    }
    draws
}

/// Walker alias table for O(1) categorical sampling.
///
/// Build once per CPT row, then draw millions of values with two uniform
/// draws each. Probabilities are normalized internally.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Construct from (unnormalized, non-negative) weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/NaN value, or sums
    /// to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "AliasTable: empty weights");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "AliasTable: bad weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "AliasTable: weights sum to zero");
        let k = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * k as f64 / total).collect();
        let mut alias = vec![0u32; k];
        let mut small: Vec<usize> = Vec::with_capacity(k);
        let mut large: Vec<usize> = Vec::with_capacity(k);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l as u32;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: both stacks drain to probability 1.
        for l in large {
            prob[l] = 1.0;
        }
        for s in small {
            prob[s] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when there is exactly one category (always sampled).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw a category index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let k = self.prob.len();
        let i = rng.gen_range(0..k);
        if rng.gen::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

/// Sample an index from unnormalized weights by linear scan (no table).
/// Prefer [`AliasTable`] when the same weights are reused.
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> u32 {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "sample_weighted: weights sum to zero");
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i as u32;
        }
    }
    (weights.len() - 1) as u32
}

/// Fisher–Yates shuffle of indices `0..n`, returned as a permutation vector.
pub fn random_permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xFA1B_5E17)
    }

    #[test]
    fn std_normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| sample_std_normal(&mut r)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert_close!(mean, 0.0, 0.02);
        assert_close!(var, 1.0, 0.03);
    }

    #[test]
    fn normal_location_scale() {
        let mut r = rng();
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| sample_normal(&mut r, 3.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert_close!(mean, 3.0, 0.05);
        assert_close!(var, 4.0, 0.15);
    }

    #[test]
    fn gamma_moments_match_theory() {
        // Gamma(k, 1): mean k, variance k.
        let mut r = rng();
        for &shape in &[0.5, 1.0, 2.5, 9.0] {
            let n = 100_000;
            let draws: Vec<f64> = (0..n).map(|_| sample_gamma(&mut r, shape)).collect();
            let mean = draws.iter().sum::<f64>() / n as f64;
            let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
            assert_close!(mean, shape, shape * 0.05 + 0.02);
            assert_close!(var, shape, shape * 0.15 + 0.05);
        }
    }

    #[test]
    fn gamma_always_positive() {
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(sample_gamma(&mut r, 0.3) > 0.0);
        }
    }

    #[test]
    fn dirichlet_sums_to_one_and_tracks_alphas() {
        let mut r = rng();
        let alphas = [2.0, 4.0, 6.0];
        let mut acc = [0.0; 3];
        let n = 20_000;
        for _ in 0..n {
            let d = sample_dirichlet(&mut r, &alphas);
            assert_close!(d.iter().sum::<f64>(), 1.0, 1e-12);
            for (a, v) in acc.iter_mut().zip(&d) {
                *a += v;
            }
        }
        // E[Dirichlet component i] = αᵢ / Σα
        for (i, &a) in alphas.iter().enumerate() {
            assert_close!(acc[i] / n as f64, a / 12.0, 0.01);
        }
    }

    #[test]
    fn alias_table_matches_weights() {
        let mut r = rng();
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let mut counts = [0usize; 4];
        let n = 400_000;
        for _ in 0..n {
            counts[table.sample(&mut r) as usize] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            assert_close!(counts[i] as f64 / n as f64, w / 10.0, 0.005);
        }
    }

    #[test]
    fn alias_table_single_category() {
        let mut r = rng();
        let table = AliasTable::new(&[5.0]);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut r), 0);
        }
    }

    #[test]
    fn alias_table_handles_zero_weight_categories() {
        let mut r = rng();
        let table = AliasTable::new(&[0.0, 1.0, 0.0]);
        for _ in 0..1_000 {
            assert_eq!(table.sample(&mut r), 1);
        }
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn alias_table_rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn sample_weighted_agrees_with_alias() {
        let mut r = rng();
        let weights = [3.0, 1.0];
        let mut count0 = 0usize;
        let n = 100_000;
        for _ in 0..n {
            if sample_weighted(&mut r, &weights) == 0 {
                count0 += 1;
            }
        }
        assert_close!(count0 as f64 / n as f64, 0.75, 0.01);
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut r = rng();
        for n in [0usize, 1, 2, 17, 100] {
            let p = random_permutation(&mut r, n);
            let mut seen = vec![false; n];
            for &i in &p {
                assert!(!seen[i], "duplicate index");
                seen[i] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn permutation_is_uniformish() {
        // Position of element 0 should be uniform over 0..4.
        let mut r = rng();
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            let p = random_permutation(&mut r, 4);
            counts[p.iter().position(|&x| x == 0).unwrap()] += 1;
        }
        for &c in &counts {
            assert_close!(c as f64 / n as f64, 0.25, 0.02);
        }
    }
}
