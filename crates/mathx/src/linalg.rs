//! Dense row-major matrix with the handful of operations the workspace
//! needs: products, Cholesky factorization, SPD solves (plain and ridge),
//! column means, and sample covariance.
//!
//! This is deliberately not a general linear-algebra library — it exists so
//! the RCIT conditional-independence test and the logistic-regression IRLS
//! step have exactly the kernels they need, with no `unsafe` and no
//! dependencies. Dimensions in this workspace stay small (≤ a few hundred
//! columns), so simple cache-friendly triple loops are fast enough.

/// Dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Mat::from_vec: buffer length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from a slice of rows (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        assert!(r > 0, "Mat::from_rows: empty");
        let c = rows[0].len();
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Mat::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    pub fn t(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Mat::zeros(self.rows, rhs.cols);
        // i-k-j loop order: streams through `rhs` rows, cache-friendly for
        // row-major storage.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        out
    }

    /// `selfᵀ * rhs` without materializing the transpose.
    pub fn t_matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul: {}x{} ᵀ* {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Mat::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let lrow = self.row(r);
            let rrow = rhs.row(r);
            for (i, &l) in lrow.iter().enumerate() {
                if l == 0.0 {
                    continue;
                }
                let orow = out.row_mut(i);
                for (o, &v) in orow.iter_mut().zip(rrow) {
                    *o += l * v;
                }
            }
        }
        out
    }

    /// Elementwise `self + rhs`.
    pub fn add(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise `self - rhs`.
    pub fn sub(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scale every entry by `s`.
    pub fn scale(&self, s: f64) -> Mat {
        let data = self.data.iter().map(|a| a * s).collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Frobenius norm squared `Σ aᵢⱼ²`.
    pub fn frob_sq(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum()
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "trace: non-square");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Per-column means.
    pub fn col_means(&self) -> Vec<f64> {
        let mut m = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (acc, &v) in m.iter_mut().zip(self.row(i)) {
                *acc += v;
            }
        }
        let n = self.rows.max(1) as f64;
        for v in &mut m {
            *v /= n;
        }
        m
    }

    /// Center columns in place (subtract each column's mean); returns the means.
    pub fn center_cols(&mut self) -> Vec<f64> {
        let means = self.col_means();
        for i in 0..self.rows {
            for (v, &m) in self.row_mut(i).iter_mut().zip(&means) {
                *v -= m;
            }
        }
        means
    }

    /// Sample covariance of the columns of `x` and `y` (both `n × ·`,
    /// normalized by `n`): `Cov = Xcᵀ Yc / n` where `Xc`, `Yc` are centered.
    pub fn cross_cov(x: &Mat, y: &Mat) -> Mat {
        assert_eq!(x.rows, y.rows, "cross_cov: row mismatch");
        let mut xc = x.clone();
        let mut yc = y.clone();
        xc.center_cols();
        yc.center_cols();
        xc.t_matmul(&yc).scale(1.0 / x.rows.max(1) as f64)
    }

    /// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
    /// matrix; returns lower-triangular `L`, or `None` if the matrix is not
    /// (numerically) positive definite.
    pub fn cholesky(&self) -> Option<Mat> {
        assert_eq!(self.rows, self.cols, "cholesky: non-square");
        let n = self.rows;
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Solve `A X = B` for SPD `A` (self) via Cholesky. Returns `None` when
    /// `A` is not positive definite.
    pub fn solve_spd(&self, b: &Mat) -> Option<Mat> {
        assert_eq!(self.rows, b.rows, "solve_spd: dimension mismatch");
        let l = self.cholesky()?;
        let n = self.rows;
        let m = b.cols;
        // Forward substitution: L Y = B
        let mut y = b.clone();
        for i in 0..n {
            for c in 0..m {
                let mut v = y[(i, c)];
                for k in 0..i {
                    v -= l[(i, k)] * y[(k, c)];
                }
                y[(i, c)] = v / l[(i, i)];
            }
        }
        // Back substitution: Lᵀ X = Y
        let mut x = y;
        for i in (0..n).rev() {
            for c in 0..m {
                let mut v = x[(i, c)];
                for k in i + 1..n {
                    v -= l[(k, i)] * x[(k, c)];
                }
                x[(i, c)] = v / l[(i, i)];
            }
        }
        Some(x)
    }

    /// Ridge-regularized least squares: returns `W` minimizing
    /// `‖Z W - T‖² + λ‖W‖²`, i.e. `W = (ZᵀZ + λI)⁻¹ ZᵀT`.
    ///
    /// Used by RCIT to residualize feature maps on the conditioning set.
    /// `lambda` must be positive, which guarantees positive-definiteness.
    pub fn ridge_solve(z: &Mat, t: &Mat, lambda: f64) -> Mat {
        assert!(lambda > 0.0, "ridge_solve: lambda must be positive");
        let mut ztz = z.t_matmul(z);
        for i in 0..ztz.rows {
            ztz[(i, i)] += lambda;
        }
        let ztt = z.t_matmul(t);
        ztz.solve_spd(&ztt)
            .expect("ridge_solve: ZᵀZ + λI must be positive definite")
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "Mat index out of range");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "Mat index out of range");
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Mat::from_rows(&[&[1.0, -2.0, 0.5], &[3.5, 4.0, -1.0]]);
        assert_eq!(a.matmul(&Mat::eye(3)), a);
        assert_eq!(Mat::eye(2).matmul(&a), a);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Mat::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 1.0], &[1.0, 1.0, 0.0]]);
        assert_eq!(a.t_matmul(&b), a.t().matmul(&b));
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.t().t(), a);
    }

    #[test]
    fn cholesky_recomposes() {
        // SPD matrix
        let a = Mat::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]);
        let l = a.cholesky().expect("SPD");
        let recon = l.matmul(&l.t());
        for i in 0..3 {
            for j in 0..3 {
                assert_close!(recon[(i, j)], a[(i, j)], 1e-12);
            }
        }
        // Strictly lower triangular above diagonal must be zero.
        assert_eq!(l[(0, 1)], 0.0);
        assert_eq!(l[(0, 2)], 0.0);
        assert_eq!(l[(1, 2)], 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn solve_spd_solves() {
        let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let b = Mat::from_rows(&[&[1.0], &[2.0]]);
        let x = a.solve_spd(&b).unwrap();
        let ax = a.matmul(&x);
        assert_close!(ax[(0, 0)], 1.0, 1e-12);
        assert_close!(ax[(1, 0)], 2.0, 1e-12);
    }

    #[test]
    fn ridge_solve_shrinks_towards_zero() {
        // With huge lambda the solution goes to ~0; with tiny lambda it
        // approaches the least-squares solution of a well-posed system.
        let z = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let t = Mat::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let w_small = Mat::ridge_solve(&z, &t, 1e-9);
        let w_big = Mat::ridge_solve(&z, &t, 1e9);
        assert_close!(w_small[(0, 0)], 1.0, 1e-5);
        assert_close!(w_small[(1, 0)], 2.0, 1e-5);
        assert!(w_big[(0, 0)].abs() < 1e-6);
        assert!(w_big[(1, 0)].abs() < 1e-6);
    }

    #[test]
    fn col_means_and_centering() {
        let mut a = Mat::from_rows(&[&[1.0, 10.0], &[3.0, 20.0]]);
        let means = a.center_cols();
        assert_eq!(means, vec![2.0, 15.0]);
        assert_eq!(a, Mat::from_rows(&[&[-1.0, -5.0], &[1.0, 5.0]]));
        assert_eq!(a.col_means(), vec![0.0, 0.0]);
    }

    #[test]
    fn cross_cov_of_identical_columns_is_variance() {
        let x = Mat::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let c = Mat::cross_cov(&x, &x);
        // population variance of {1,2,3,4} = 1.25
        assert_close!(c[(0, 0)], 1.25, 1e-12);
    }

    #[test]
    fn cross_cov_independent_columns_near_zero() {
        // Orthogonal patterns -> zero covariance.
        let x = Mat::from_rows(&[&[1.0], &[-1.0], &[1.0], &[-1.0]]);
        let y = Mat::from_rows(&[&[1.0], &[1.0], &[-1.0], &[-1.0]]);
        let c = Mat::cross_cov(&x, &y);
        assert_close!(c[(0, 0)], 0.0, 1e-12);
    }

    #[test]
    fn frob_and_trace() {
        let a = Mat::from_rows(&[&[3.0, 0.0], &[4.0, 1.0]]);
        assert_close!(a.frob_sq(), 26.0, 1e-12);
        assert_close!(a.trace(), 4.0, 1e-12);
    }

    #[test]
    fn add_sub_scale_roundtrip() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.scale(2.0).scale(0.5), a);
    }
}
