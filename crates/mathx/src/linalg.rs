//! Dense row-major matrix with the handful of operations the workspace
//! needs: products, Cholesky factorization, SPD solves (plain and ridge),
//! column means, and sample covariance.
//!
//! This is deliberately not a general linear-algebra library — it exists so
//! the RCIT conditional-independence test and the logistic-regression IRLS
//! step have exactly the kernels they need, with no `unsafe` and no
//! dependencies.
//!
//! The products come in two implementations: the blocked kernels
//! ([`Mat::matmul`] / [`Mat::t_matmul`], cache-tiled over *independent
//! output cells*) and the plain triple loops
//! ([`Mat::matmul_naive`] / [`Mat::t_matmul_naive`]). Both accumulate each
//! output cell's dot product in the same ascending-k order with the same
//! zero skip, so they are bit-for-bit identical on finite inputs; the
//! naive pair is kept as the benchmark/property-test reference and can be
//! forced globally via [`set_naive_kernels`] or the
//! `FAIRSEL_NAIVE_KERNELS` environment variable.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static NAIVE_KERNELS: AtomicBool = AtomicBool::new(false);
static NAIVE_ENV: OnceLock<bool> = OnceLock::new();

/// Route [`Mat::matmul`] / [`Mat::t_matmul`] through the naive reference
/// loops (process-wide). Safe to toggle at any time: both implementations
/// return bit-identical results — this exists so benchmarks can measure
/// the blocked kernels against the reference.
pub fn set_naive_kernels(on: bool) {
    NAIVE_KERNELS.store(on, Ordering::Relaxed);
}

/// True when the naive reference kernels are forced, either via
/// [`set_naive_kernels`] or `FAIRSEL_NAIVE_KERNELS=1` in the environment.
pub fn naive_kernels() -> bool {
    let env = *NAIVE_ENV.get_or_init(|| {
        std::env::var("FAIRSEL_NAIVE_KERNELS")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false)
    });
    env || NAIVE_KERNELS.load(Ordering::Relaxed)
}

/// Output-column tile width for the blocked products: a `128`-wide f64
/// panel is 1 KiB per row — a handful of these (one output panel row, one
/// rhs panel row) sit comfortably in L1 while `k` streams.
const JB: usize = 128;
/// Row-block height for `matmul`: bounds the set of output rows touched
/// per tile so the rhs panel stays resident across them.
const IB: usize = 64;
/// Inner-dimension block depth for `matmul`: caps the rhs panel at
/// `KB × JB` f64 (256 KiB — L2-resident) so it is reused across all `IB`
/// output rows of a tile instead of being streamed from memory once per
/// row. Blocking `k` does not reassociate anything: each output cell
/// still accumulates directly into its slot, k-block by k-block in
/// ascending order, so the per-cell ascending-`k` contract (and with it
/// bit-identity to the naive kernels) is preserved.
const KB: usize = 256;
/// Minimum width at which [`Mat::gram`] switches from the full naive
/// product to the upper-triangle kernel. Below this the triangle's short
/// tail loops cost more than the saved FLOPs (measured break-even ≈16
/// columns at 500k rows).
const GRAM_TRI_MIN: usize = 16;

/// Dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Mat::from_vec: buffer length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from a slice of rows (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        assert!(r > 0, "Mat::from_rows: empty");
        let c = rows[0].len();
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Mat::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    pub fn t(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// Cache-blocked on all three dimensions: the output is tiled into
    /// `IB × JB` panels, and the shared dimension is cut into `KB`-deep
    /// blocks so each `KB × JB` rhs panel stays cache-resident across
    /// every output row of the tile (above the tile sizes the old
    /// two-level blocking re-streamed the full rhs column panel per
    /// output row). Each output cell still accumulates its dot product
    /// in the same ascending-`k` order with the same zero skip as
    /// [`Mat::matmul_naive`] — k-blocks are visited in ascending order
    /// and accumulate straight into the output slot, never into partial
    /// sums — so the result is bit-identical.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        if naive_kernels() || rhs.cols <= JB {
            // One column panel covers the whole output: the naive i-k-j
            // loop already visits exactly the blocked order.
            return self.matmul_naive(rhs);
        }
        let m = rhs.cols;
        let kk = self.cols;
        let mut out = Mat::zeros(self.rows, m);
        for jb in (0..m).step_by(JB) {
            let jw = JB.min(m - jb);
            for ib in (0..self.rows).step_by(IB) {
                let iw = IB.min(self.rows - ib);
                for kb in (0..kk).step_by(KB) {
                    let kw = KB.min(kk - kb);
                    for i in ib..ib + iw {
                        let arow = &self.row(i)[kb..kb + kw];
                        let obase = i * m + jb;
                        for (dk, &a) in arow.iter().enumerate() {
                            if a == 0.0 {
                                continue;
                            }
                            let rrow = &rhs.row(kb + dk)[jb..jb + jw];
                            let orow = &mut out.data[obase..obase + jw];
                            // order: each out cell accumulates over k
                            // ascending (kb blocks in order, dk ascending
                            // within) — identical to the naive i-k-j walk.
                            for (o, &r) in orow.iter_mut().zip(rrow) {
                                *o += a * r;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Reference matrix product: plain i-k-j triple loop. Bit-identical to
    /// [`Mat::matmul`]; kept as the pre-blocking baseline for benchmarks
    /// and property tests.
    pub fn matmul_naive(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Mat::zeros(self.rows, rhs.cols);
        // i-k-j loop order: streams through `rhs` rows, cache-friendly for
        // row-major storage.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                // order: k ascending per out cell — the reference order the
                // blocked kernel reproduces.
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        out
    }

    /// `selfᵀ * rhs` without materializing the transpose.
    ///
    /// Cache-blocked over output panels on *both* axes: `JB`-wide column
    /// panels as before, and `IB`-tall output-row blocks so that at
    /// feature-map widths above the tile (`self.cols > IB`) each pass
    /// over the shared row dimension touches an `IB × JB` output slab
    /// (64 KiB) instead of the full `cols × JB` slab, which stops
    /// fitting cache exactly when RCIT's feature maps get wide. Each
    /// output cell belongs to exactly one tile and accumulates in the
    /// same ascending-row order (and zero skip) as
    /// [`Mat::t_matmul_naive`], so the result is bit-identical.
    pub fn t_matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul: {}x{} ᵀ* {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        if naive_kernels() || rhs.cols <= JB {
            return self.t_matmul_naive(rhs);
        }
        let m = rhs.cols;
        let p = self.cols;
        let mut out = Mat::zeros(p, m);
        for jb in (0..m).step_by(JB) {
            let jw = JB.min(m - jb);
            for ib in (0..p).step_by(IB) {
                let iw = IB.min(p - ib);
                for r in 0..self.rows {
                    let lrow = &self.row(r)[ib..ib + iw];
                    let rrow = &rhs.row(r)[jb..jb + jw];
                    for (di, &l) in lrow.iter().enumerate() {
                        if l == 0.0 {
                            continue;
                        }
                        let obase = (ib + di) * m + jb;
                        let orow = &mut out.data[obase..obase + jw];
                        // order: each out cell accumulates over the shared
                        // row dimension r ascending — identical to the
                        // naive single-pass walk.
                        for (o, &v) in orow.iter_mut().zip(rrow) {
                            *o += l * v;
                        }
                    }
                }
            }
        }
        out
    }

    /// Reference `selfᵀ * rhs`: single pass over the shared row dimension.
    /// Bit-identical to [`Mat::t_matmul`]; kept as the pre-blocking
    /// baseline for benchmarks and property tests.
    pub fn t_matmul_naive(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul: {}x{} ᵀ* {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Mat::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let lrow = self.row(r);
            let rrow = rhs.row(r);
            for (i, &l) in lrow.iter().enumerate() {
                if l == 0.0 {
                    continue;
                }
                let orow = out.row_mut(i);
                // order: shared row dimension r ascending per out cell —
                // the reference order the blocked kernel reproduces.
                for (o, &v) in orow.iter_mut().zip(rrow) {
                    *o += l * v;
                }
            }
        }
        out
    }

    /// Gram matrix `selfᵀ * self`, exploiting symmetry: only the upper
    /// triangle (diagonal included) is accumulated — in exactly the order
    /// `t_matmul_naive(self)` accumulates those cells — and the lower
    /// triangle is mirrored. Mirroring is bit-identical on finite inputs:
    /// cell `(j, i)` of the naive product sums the same `a·b` terms as
    /// `(i, j)` (float multiplication is commutative), and the summands
    /// present in one accumulation but not the other are exact `±0.0`
    /// products, which never alter a finite running sum. Halves the FLOPs
    /// of the normal-equation formation in [`Mat::ridge_solve`] — the
    /// dominant cost of tall-skinny Fisher-z residualization.
    ///
    /// Falls back to the full [`Mat::t_matmul_naive`] when the naive
    /// kernels are forced (see [`set_naive_kernels`]) or when the matrix
    /// is narrower than [`GRAM_TRI_MIN`] columns: the triangle's
    /// shrinking inner loops (average length `cols / 2`) lose more to
    /// loop overhead than the halved FLOPs save until the width clears
    /// the vectorization break-even. Both paths are bit-identical, so
    /// the dispatch is purely a speed choice.
    pub fn gram(&self) -> Mat {
        if naive_kernels() || self.cols < GRAM_TRI_MIN {
            return self.t_matmul_naive(self);
        }
        let c = self.cols;
        let mut out = Mat::zeros(c, c);
        for r in 0..self.rows {
            let lrow = self.row(r);
            for (i, &l) in lrow.iter().enumerate() {
                if l == 0.0 {
                    continue;
                }
                let obase = i * c;
                let orow = &mut out.data[obase + i..obase + c];
                // order: row dimension r ascending per upper-triangle cell;
                // register-chunking this loop reassociates the sums and
                // breaks bit-identity (known dead end — do not retry).
                for (o, &v) in orow.iter_mut().zip(&lrow[i..]) {
                    *o += l * v;
                }
            }
        }
        for i in 0..c {
            for j in 0..i {
                out.data[i * c + j] = out.data[j * c + i];
            }
        }
        out
    }

    /// Elementwise `self + rhs`.
    pub fn add(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise `self - rhs`.
    pub fn sub(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scale every entry by `s`.
    pub fn scale(&self, s: f64) -> Mat {
        let data = self.data.iter().map(|a| a * s).collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Frobenius norm squared `Σ aᵢⱼ²`.
    pub fn frob_sq(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum()
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "trace: non-square");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Per-column means.
    pub fn col_means(&self) -> Vec<f64> {
        let mut m = vec![0.0; self.cols];
        // order: row index i ascending per column accumulator.
        for i in 0..self.rows {
            for (acc, &v) in m.iter_mut().zip(self.row(i)) {
                *acc += v;
            }
        }
        let n = self.rows.max(1) as f64;
        for v in &mut m {
            *v /= n;
        }
        m
    }

    /// Center columns in place (subtract each column's mean); returns the means.
    pub fn center_cols(&mut self) -> Vec<f64> {
        let means = self.col_means();
        for i in 0..self.rows {
            for (v, &m) in self.row_mut(i).iter_mut().zip(&means) {
                *v -= m;
            }
        }
        means
    }

    /// Sample covariance of the columns of `x` and `y` (both `n × ·`,
    /// normalized by `n`): `Cov = Xcᵀ Yc / n` where `Xc`, `Yc` are centered.
    pub fn cross_cov(x: &Mat, y: &Mat) -> Mat {
        assert_eq!(x.rows, y.rows, "cross_cov: row mismatch");
        let mut xc = x.clone();
        let mut yc = y.clone();
        xc.center_cols();
        yc.center_cols();
        xc.t_matmul(&yc).scale(1.0 / x.rows.max(1) as f64)
    }

    /// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
    /// matrix; returns lower-triangular `L`, or `None` if the matrix is not
    /// (numerically) positive definite.
    pub fn cholesky(&self) -> Option<Mat> {
        assert_eq!(self.rows, self.cols, "cholesky: non-square");
        let n = self.rows;
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Solve `A X = B` for SPD `A` (self) via Cholesky. Returns `None` when
    /// `A` is not positive definite.
    pub fn solve_spd(&self, b: &Mat) -> Option<Mat> {
        assert_eq!(self.rows, b.rows, "solve_spd: dimension mismatch");
        let l = self.cholesky()?;
        let n = self.rows;
        let m = b.cols;
        // Forward substitution: L Y = B
        let mut y = b.clone();
        for i in 0..n {
            for c in 0..m {
                let mut v = y[(i, c)];
                for k in 0..i {
                    v -= l[(i, k)] * y[(k, c)];
                }
                y[(i, c)] = v / l[(i, i)];
            }
        }
        // Back substitution: Lᵀ X = Y
        let mut x = y;
        for i in (0..n).rev() {
            for c in 0..m {
                let mut v = x[(i, c)];
                for k in i + 1..n {
                    v -= l[(k, i)] * x[(k, c)];
                }
                x[(i, c)] = v / l[(i, i)];
            }
        }
        Some(x)
    }

    /// Ridge-regularized least squares: returns `W` minimizing
    /// `‖Z W - T‖² + λ‖W‖²`, i.e. `W = (ZᵀZ + λI)⁻¹ ZᵀT`.
    ///
    /// Used by RCIT to residualize feature maps on the conditioning set.
    /// `lambda` must be positive, which guarantees positive-definiteness.
    pub fn ridge_solve(z: &Mat, t: &Mat, lambda: f64) -> Mat {
        assert!(lambda > 0.0, "ridge_solve: lambda must be positive");
        let mut ztz = z.gram();
        // order: single ridge add per diagonal cell, after the gram sums.
        for i in 0..ztz.rows {
            ztz[(i, i)] += lambda;
        }
        let ztt = z.t_matmul(t);
        ztz.solve_spd(&ztt)
            .expect("ridge_solve: ZᵀZ + λI must be positive definite")
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "Mat index out of range");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "Mat index out of range");
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Mat::from_rows(&[&[1.0, -2.0, 0.5], &[3.5, 4.0, -1.0]]);
        assert_eq!(a.matmul(&Mat::eye(3)), a);
        assert_eq!(Mat::eye(2).matmul(&a), a);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Mat::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 1.0], &[1.0, 1.0, 0.0]]);
        assert_eq!(a.t_matmul(&b), a.t().matmul(&b));
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.t().t(), a);
    }

    #[test]
    fn cholesky_recomposes() {
        // SPD matrix
        let a = Mat::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]);
        let l = a.cholesky().expect("SPD");
        let recon = l.matmul(&l.t());
        for i in 0..3 {
            for j in 0..3 {
                assert_close!(recon[(i, j)], a[(i, j)], 1e-12);
            }
        }
        // Strictly lower triangular above diagonal must be zero.
        assert_eq!(l[(0, 1)], 0.0);
        assert_eq!(l[(0, 2)], 0.0);
        assert_eq!(l[(1, 2)], 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn solve_spd_solves() {
        let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let b = Mat::from_rows(&[&[1.0], &[2.0]]);
        let x = a.solve_spd(&b).unwrap();
        let ax = a.matmul(&x);
        assert_close!(ax[(0, 0)], 1.0, 1e-12);
        assert_close!(ax[(1, 0)], 2.0, 1e-12);
    }

    #[test]
    fn ridge_solve_shrinks_towards_zero() {
        // With huge lambda the solution goes to ~0; with tiny lambda it
        // approaches the least-squares solution of a well-posed system.
        let z = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let t = Mat::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let w_small = Mat::ridge_solve(&z, &t, 1e-9);
        let w_big = Mat::ridge_solve(&z, &t, 1e9);
        assert_close!(w_small[(0, 0)], 1.0, 1e-5);
        assert_close!(w_small[(1, 0)], 2.0, 1e-5);
        assert!(w_big[(0, 0)].abs() < 1e-6);
        assert!(w_big[(1, 0)].abs() < 1e-6);
    }

    #[test]
    fn col_means_and_centering() {
        let mut a = Mat::from_rows(&[&[1.0, 10.0], &[3.0, 20.0]]);
        let means = a.center_cols();
        assert_eq!(means, vec![2.0, 15.0]);
        assert_eq!(a, Mat::from_rows(&[&[-1.0, -5.0], &[1.0, 5.0]]));
        assert_eq!(a.col_means(), vec![0.0, 0.0]);
    }

    #[test]
    fn cross_cov_of_identical_columns_is_variance() {
        let x = Mat::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let c = Mat::cross_cov(&x, &x);
        // population variance of {1,2,3,4} = 1.25
        assert_close!(c[(0, 0)], 1.25, 1e-12);
    }

    #[test]
    fn cross_cov_independent_columns_near_zero() {
        // Orthogonal patterns -> zero covariance.
        let x = Mat::from_rows(&[&[1.0], &[-1.0], &[1.0], &[-1.0]]);
        let y = Mat::from_rows(&[&[1.0], &[1.0], &[-1.0], &[-1.0]]);
        let c = Mat::cross_cov(&x, &y);
        assert_close!(c[(0, 0)], 0.0, 1e-12);
    }

    #[test]
    fn frob_and_trace() {
        let a = Mat::from_rows(&[&[3.0, 0.0], &[4.0, 1.0]]);
        assert_close!(a.frob_sq(), 26.0, 1e-12);
        assert_close!(a.trace(), 4.0, 1e-12);
    }

    /// Deterministic pseudorandom matrix with a sprinkling of exact zeros,
    /// so the zero-skip path is exercised.
    fn pseudo_mat(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let data = (0..rows * cols)
            .map(|_| {
                let r = next();
                if r % 7 == 0 {
                    0.0
                } else {
                    (r % 2001) as f64 / 1000.0 - 1.0
                }
            })
            .collect();
        Mat::from_vec(rows, cols, data)
    }

    fn assert_bits_eq(a: &Mat, b: &Mat) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn blocked_matmul_bit_identical_to_naive() {
        // Shapes straddling the JB/IB/KB tile sizes, including
        // non-multiples and shared dimensions deeper than one KB block.
        for &(n, k, m, seed) in &[
            (3, 5, 4, 1u64),
            (65, 33, 129, 2),
            (70, 40, 300, 3),
            (128, 64, 256, 4),
            (1, 200, 257, 5),
            (64, 256, 129, 6),
            (70, 300, 200, 7),
            (129, 513, 257, 8),
        ] {
            let a = pseudo_mat(n, k, seed);
            let b = pseudo_mat(k, m, seed + 100);
            assert_bits_eq(&a.matmul(&b), &a.matmul_naive(&b));
        }
    }

    #[test]
    fn blocked_t_matmul_bit_identical_to_naive() {
        // `p` spans scalar to above the IB output-row block, including
        // non-multiples, so every tile edge of the two-axis blocking is hit.
        for &(n, p, m, seed) in &[
            (5, 3, 4, 11u64),
            (200, 17, 129, 12),
            (333, 25, 300, 13),
            (64, 128, 256, 14),
            (100, 64, 129, 15),
            (150, 65, 200, 16),
            (333, 200, 257, 17),
        ] {
            let a = pseudo_mat(n, p, seed);
            let b = pseudo_mat(n, m, seed + 100);
            assert_bits_eq(&a.t_matmul(&b), &a.t_matmul_naive(&b));
        }
    }

    #[test]
    fn gram_bit_identical_to_t_matmul_naive() {
        // pseudo_mat plants exact zeros (~1/7 of entries), exercising the
        // asymmetric zero-skip the mirror argument has to survive, at
        // shapes from scalar to wider-than-tile.
        for &(n, p, seed) in &[
            (1, 1, 31u64),
            (7, 3, 32),
            (200, 17, 33),
            (333, 25, 34),
            (64, 140, 35),
        ] {
            let a = pseudo_mat(n, p, seed);
            assert_bits_eq(&a.gram(), &a.t_matmul_naive(&a));
        }
    }

    #[test]
    fn naive_toggle_routes_both_products() {
        let a = pseudo_mat(40, 20, 21);
        let b = pseudo_mat(20, 150, 22);
        let c = pseudo_mat(40, 150, 23);
        let blocked = (a.matmul(&b), a.t_matmul(&c), a.gram());
        set_naive_kernels(true);
        let naive = (a.matmul(&b), a.t_matmul(&c), a.gram());
        set_naive_kernels(false);
        assert_bits_eq(&blocked.0, &naive.0);
        assert_bits_eq(&blocked.1, &naive.1);
        assert_bits_eq(&blocked.2, &naive.2);
    }

    #[test]
    fn add_sub_scale_roundtrip() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.scale(2.0).scale(0.5), a);
    }
}
