//! `fairsel-engine` — the CI-test execution subsystem.
//!
//! Every algorithm in the paper (SeqSel, GrpSel, PC / Fair-PC) bottoms out
//! in conditional-independence queries; the paper's entire complexity
//! story is counted in CI-test invocations. The seed code had each caller
//! invoking testers directly — no reuse, no batching, no parallelism. This
//! crate centralizes execution the way a throughput-oriented query engine
//! would:
//!
//! * [`CiSession`] wraps any [`fairsel_ci::CiTest`] behind canonicalized
//!   [`QueryKey`]s (symmetric `x`/`y` normalization, sorted `Z`) and a memo
//!   cache, so a repeated or reordered query is answered without touching
//!   the tester;
//! * [`CiSession::run_batch`] / [`CiSession::run_batch_parallel`] evaluate
//!   a batch of independent queries — deduplicated against the cache and
//!   against each other — sequentially or across a `std::thread` worker
//!   pool, with deterministic result ordering either way (parallelism
//!   requires the tester to implement [`fairsel_ci::CiTestShared`]);
//! * [`CiSession::run_batch_batched`] /
//!   [`CiSession::run_batch_batched_parallel`] route the unique misses
//!   through a batch-aware tester's [`fairsel_ci::CiTestBatch::eval_batch`]
//!   so a whole frontier shares one columnar encoding pass
//!   ([`fairsel_table::EncodedTable`]); the tester's encode-cache telemetry
//!   surfaces as `encode_cache_hits` / `encode_cache_misses` in
//!   [`EngineStats`];
//! * [`CiSession::run_batch_grouped`] — the production path — partitions
//!   the misses by *canonical conditioning set* and evaluates each group
//!   through [`fairsel_ci::CiTestBatch::eval_z_group`], so the per-`Z`
//!   scaffold (stratification, ridge factorization, standardized
//!   conditioning block) is built once per distinct set; with workers the
//!   groups become steal-able chunks on the session's persistent
//!   [`WorkerPool`], and *speculative* ride-along queries pre-warm the
//!   cache under dedicated accounting (`speculative_issued` /
//!   `speculative_hits`, with `issued + speculative_hits` conserved
//!   against a speculation-free run);
//! * [`EngineStats`] tracks per-session and per-phase telemetry (queries
//!   requested, tests actually issued, cache hits, dedup rate, wall time)
//!   and serializes to JSON for the `BENCH_*.json` trajectories;
//! * [`HalvingPlanner`] / [`exists_certificate`] surface GrpSel's
//!   recursive halving as level-synchronous *frontiers* of independent
//!   group queries — the shape the batch scheduler can actually exploit —
//!   while issuing exactly the query set the depth-first recursion would;
//!   [`HalvingPlanner::speculative_halves`] names the next level's
//!   predictable queries for the speculative scheduler.

pub mod exec;
pub mod key;
pub mod planner;
pub mod pool;
pub mod session;

pub use exec::default_workers;
pub use key::{CiQuery, QueryKey};
pub use planner::{
    exists_certificate, exists_certificate_parallel, exists_with, exists_with_spec,
    FrontierOutcome, HalvingPlanner,
};
pub use pool::WorkerPool;
pub use session::{CiSession, EngineStats, PhaseStats};
