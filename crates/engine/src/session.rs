//! The memoizing session and its telemetry.

use crate::key::QueryKey;
use crate::pool::WorkerPool;
use fairsel_ci::{CiOutcome, CiTest, EncodeStats, VarId};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Telemetry for one phase of a session (e.g. "phase1", "skeleton-L2").
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseStats {
    /// Phase label.
    pub name: String,
    /// Logical queries routed through the session during this phase.
    pub requested: u64,
    /// Tester invocations actually issued (cache misses).
    pub issued: u64,
    /// Queries answered from the memo cache.
    pub cache_hits: u64,
    /// Wall time spent evaluating this phase's queries, in milliseconds.
    pub wall_ms: f64,
}

/// Whole-session telemetry, serializable to JSON for `BENCH_*.json`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineStats {
    /// Logical queries routed through the session.
    pub requested: u64,
    /// Tester invocations actually issued (requested − cache hits).
    pub issued: u64,
    /// Queries answered from the memo cache (or deduplicated in-batch).
    pub cache_hits: u64,
    /// Batches executed (sequential and parallel).
    pub batches: u64,
    /// Batches that ran on the parallel worker pool.
    pub parallel_batches: u64,
    /// Batches routed through a batch-aware tester's `eval_batch`.
    pub batched_batches: u64,
    /// Batches executed by the Z-grouped scheduler (conditioning-set
    /// partitioning + `eval_z_group`, inline or on the worker pool).
    pub grouped_batches: u64,
    /// Queries evaluated *speculatively* — predicted next-level frontier
    /// work issued ahead of demand while workers were available.
    pub speculative_issued: u64,
    /// Demanded queries answered by a speculatively computed outcome
    /// (each speculated key is counted at most once, on first use, so
    /// `issued + speculative_hits` of a speculative run equals `issued`
    /// of the same workload without speculation).
    pub speculative_hits: u64,
    /// Largest number of unique misses a single batch fanned out.
    pub max_batch: usize,
    /// Wall time spent inside tester evaluation, in milliseconds.
    pub wall_ms: f64,
    /// Encoding-layer cache hits reported by a batch-aware tester
    /// (cumulative; see `fairsel_ci::CiTestBatch::encode_cache_stats`).
    pub encode_cache_hits: u64,
    /// Encoding-layer cache misses (encodings actually computed).
    pub encode_cache_misses: u64,
    /// Encoding-layer values evicted by the LRU cache bound.
    pub encode_cache_evictions: u64,
    /// Bytes of narrow (width-adaptive) code storage built by the
    /// encoding layer — u8/u16/u32 per row depending on arity.
    pub narrow_code_bytes: u64,
    /// Contingency cells filled through the dense counting arenas
    /// (G-test and permutation-CMI kernels; hashed fallbacks count 0).
    pub dense_count_cells: u64,
    /// Rows appended to the encoding layer through dataset extension
    /// (`EncodedTable::extend`) across this session's lineage.
    pub append_rows: u64,
    /// Cached joint encodings extended in place (not rebuilt) on append.
    pub extended_encodings: u64,
    /// Tester scaffolds (stratifications, design matrices, …) carried
    /// over from a parent session on dataset extension.
    pub extended_scaffolds: u64,
    /// Tester scaffolds built from scratch on this session's dataset.
    pub rebuilt_scaffolds: u64,
    /// Tester scaffolds currently resident in the tester's caches.
    pub resident_scaffolds: u64,
    /// Tester scaffolds evicted by the cache bound.
    pub scaffold_evictions: u64,
    /// Outcomes the parent session had memoized at the moment this
    /// session was created by dataset extension — the total of the
    /// patch-or-invalidate ledger.
    pub memoized_before: u64,
    /// Parent outcomes recomputed at the new row count by *patching* the
    /// tester's retained sufficient statistic with the appended rows —
    /// O(batch) counting, no tester issue.
    pub memo_patched: u64,
    /// Parent outcomes dropped at extension (tester can't patch — float
    /// moment sums reassociate —, retained counts evicted, or a patch
    /// precondition failed); re-issued on next demand.
    pub memo_invalidated: u64,
    /// Demanded queries answered by a parked patched outcome
    /// (≤ `memo_patched`: patched answers stay outside the memo until
    /// demanded, so fingerprints only ever cover demanded work).
    pub memo_patch_hits: u64,
    /// Sufficient statistics (per-query contingency tables) resident in
    /// the tester's retention cache.
    pub resident_suff_tables: u64,
    /// Sufficient statistics evicted by the retention-cache bound.
    pub suff_evictions: u64,
    /// Per-phase breakdown, in phase order.
    pub phases: Vec<PhaseStats>,
}

impl EngineStats {
    /// Fraction of requested queries that never reached the tester.
    pub fn dedup_rate(&self) -> f64 {
        if self.requested == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.requested as f64
        }
    }

    /// Speculative work that has not (yet) answered a demanded query —
    /// the cost side of the speculation policy's ledger.
    pub fn speculative_wasted(&self) -> u64 {
        self.speculative_issued
            .saturating_sub(self.speculative_hits)
    }

    /// Counter deltas since an earlier snapshot of the *same* session —
    /// what one request (or one method of a shared-session sweep) cost on
    /// its own. Every counter is a delta, including the encode-cache
    /// fields (accurate when both snapshots were taken after a
    /// `refresh_encode_stats`, as the shared-session sweep does). The two
    /// exceptions, by nature: `max_batch` is a high-water mark (carried
    /// as-is) and per-phase breakdowns are cumulative bookkeeping (not
    /// carried over).
    pub fn delta_since(&self, before: &EngineStats) -> EngineStats {
        EngineStats {
            requested: self.requested - before.requested,
            issued: self.issued - before.issued,
            cache_hits: self.cache_hits - before.cache_hits,
            batches: self.batches - before.batches,
            parallel_batches: self.parallel_batches - before.parallel_batches,
            batched_batches: self.batched_batches - before.batched_batches,
            grouped_batches: self.grouped_batches - before.grouped_batches,
            speculative_issued: self.speculative_issued - before.speculative_issued,
            speculative_hits: self.speculative_hits - before.speculative_hits,
            max_batch: self.max_batch,
            wall_ms: self.wall_ms - before.wall_ms,
            encode_cache_hits: self
                .encode_cache_hits
                .saturating_sub(before.encode_cache_hits),
            encode_cache_misses: self
                .encode_cache_misses
                .saturating_sub(before.encode_cache_misses),
            encode_cache_evictions: self
                .encode_cache_evictions
                .saturating_sub(before.encode_cache_evictions),
            narrow_code_bytes: self
                .narrow_code_bytes
                .saturating_sub(before.narrow_code_bytes),
            dense_count_cells: self
                .dense_count_cells
                .saturating_sub(before.dense_count_cells),
            append_rows: self.append_rows.saturating_sub(before.append_rows),
            extended_encodings: self
                .extended_encodings
                .saturating_sub(before.extended_encodings),
            extended_scaffolds: self
                .extended_scaffolds
                .saturating_sub(before.extended_scaffolds),
            rebuilt_scaffolds: self
                .rebuilt_scaffolds
                .saturating_sub(before.rebuilt_scaffolds),
            // Residency is a level, not a rate — carried as-is, like
            // `max_batch`.
            resident_scaffolds: self.resident_scaffolds,
            scaffold_evictions: self
                .scaffold_evictions
                .saturating_sub(before.scaffold_evictions),
            // The extension ledger is stamped once at session birth —
            // a level, carried as-is; only its consumption is a rate.
            memoized_before: self.memoized_before,
            memo_patched: self.memo_patched,
            memo_invalidated: self.memo_invalidated,
            memo_patch_hits: self.memo_patch_hits.saturating_sub(before.memo_patch_hits),
            resident_suff_tables: self.resident_suff_tables,
            suff_evictions: self.suff_evictions.saturating_sub(before.suff_evictions),
            phases: Vec::new(),
        }
    }

    /// The scaffold conservation law: every scaffold a session's tester
    /// ever held residency for was either carried over from a parent
    /// (`extended_scaffolds`) or built on this dataset
    /// (`rebuilt_scaffolds`), and is now either resident or evicted.
    /// Exact — not approximate — even under worker races, because the
    /// underlying cache ledger counts only residency-taking inserts.
    pub fn scaffolds_conserved(&self) -> bool {
        self.extended_scaffolds + self.rebuilt_scaffolds
            == self.resident_scaffolds + self.scaffold_evictions
    }

    /// The append memo ledger: every outcome memoized at the moment of
    /// dataset extension was either patched in place or invalidated —
    /// nothing is silently dropped, nothing double-counted.
    pub fn memos_conserved(&self) -> bool {
        self.memo_patched + self.memo_invalidated == self.memoized_before
    }

    /// Serialize to a self-contained JSON object (no external deps — the
    /// bench files only need numbers and short ASCII labels).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        push_kv(&mut s, "requested", self.requested as f64, false);
        push_kv(&mut s, "issued", self.issued as f64, false);
        push_kv(&mut s, "cache_hits", self.cache_hits as f64, false);
        push_kv(&mut s, "batches", self.batches as f64, false);
        push_kv(
            &mut s,
            "parallel_batches",
            self.parallel_batches as f64,
            false,
        );
        push_kv(
            &mut s,
            "batched_batches",
            self.batched_batches as f64,
            false,
        );
        push_kv(
            &mut s,
            "grouped_batches",
            self.grouped_batches as f64,
            false,
        );
        push_kv(
            &mut s,
            "speculative_issued",
            self.speculative_issued as f64,
            false,
        );
        push_kv(
            &mut s,
            "speculative_hits",
            self.speculative_hits as f64,
            false,
        );
        push_kv(
            &mut s,
            "speculative_wasted",
            self.speculative_wasted() as f64,
            false,
        );
        push_kv(&mut s, "max_batch", self.max_batch as f64, false);
        push_kv(&mut s, "dedup_rate", self.dedup_rate(), false);
        push_kv(&mut s, "wall_ms", self.wall_ms, false);
        push_kv(
            &mut s,
            "encode_cache_hits",
            self.encode_cache_hits as f64,
            false,
        );
        push_kv(
            &mut s,
            "encode_cache_misses",
            self.encode_cache_misses as f64,
            false,
        );
        push_kv(
            &mut s,
            "encode_cache_evictions",
            self.encode_cache_evictions as f64,
            false,
        );
        push_kv(
            &mut s,
            "narrow_code_bytes",
            self.narrow_code_bytes as f64,
            false,
        );
        push_kv(
            &mut s,
            "dense_count_cells",
            self.dense_count_cells as f64,
            false,
        );
        push_kv(&mut s, "append_rows", self.append_rows as f64, false);
        push_kv(
            &mut s,
            "extended_encodings",
            self.extended_encodings as f64,
            false,
        );
        push_kv(
            &mut s,
            "extended_scaffolds",
            self.extended_scaffolds as f64,
            false,
        );
        push_kv(
            &mut s,
            "rebuilt_scaffolds",
            self.rebuilt_scaffolds as f64,
            false,
        );
        push_kv(
            &mut s,
            "resident_scaffolds",
            self.resident_scaffolds as f64,
            false,
        );
        push_kv(
            &mut s,
            "scaffold_evictions",
            self.scaffold_evictions as f64,
            false,
        );
        push_kv(
            &mut s,
            "memoized_before",
            self.memoized_before as f64,
            false,
        );
        push_kv(&mut s, "memo_patched", self.memo_patched as f64, false);
        push_kv(
            &mut s,
            "memo_invalidated",
            self.memo_invalidated as f64,
            false,
        );
        push_kv(
            &mut s,
            "memo_patch_hits",
            self.memo_patch_hits as f64,
            false,
        );
        push_kv(
            &mut s,
            "resident_suff_tables",
            self.resident_suff_tables as f64,
            false,
        );
        push_kv(&mut s, "suff_evictions", self.suff_evictions as f64, false);
        s.push_str("\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            s.push_str(&format!("\"name\":\"{}\",", escape(&p.name)));
            push_kv(&mut s, "requested", p.requested as f64, false);
            push_kv(&mut s, "issued", p.issued as f64, false);
            push_kv(&mut s, "cache_hits", p.cache_hits as f64, false);
            push_kv(&mut s, "wall_ms", p.wall_ms, true);
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

pub(crate) fn push_kv(s: &mut String, k: &str, v: f64, last: bool) {
    s.push('"');
    s.push_str(k);
    s.push_str("\":");
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        s.push_str(&format!("{}", v as i64));
    } else {
        s.push_str(&format!("{v:.6}"));
    }
    if !last {
        s.push(',');
    }
}

pub(crate) fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// How one batch of unique misses was executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BatchKind {
    /// Per-query sequential evaluation.
    Sequential,
    /// Per-query evaluation fanned across the worker pool.
    Parallel,
    /// One `eval_batch` call on a batch-aware tester.
    Batched,
    /// `eval_batch` chunks fanned across the worker pool.
    BatchedParallel,
    /// Z-grouped scheduling (`eval_z_group` per conditioning-set group),
    /// evaluated inline.
    Grouped,
    /// Z-grouped scheduling with group chunks on the persistent pool.
    GroupedParallel,
}

impl BatchKind {
    /// Process-wide latency histogram for this batch kind.
    pub(crate) fn histogram(self) -> std::sync::Arc<fairsel_obs::Histogram> {
        fairsel_obs::histogram(match self {
            BatchKind::Sequential => "engine_batch/sequential",
            BatchKind::Parallel => "engine_batch/parallel",
            BatchKind::Batched => "engine_batch/batched",
            BatchKind::BatchedParallel => "engine_batch/batched_parallel",
            BatchKind::Grouped => "engine_batch/grouped",
            BatchKind::GroupedParallel => "engine_batch/grouped_parallel",
        })
    }
}

/// A memoizing execution session around any CI tester.
///
/// Every query is canonicalized to a [`QueryKey`]; answers are cached so a
/// repeated query — from the same algorithm, a later phase, or an entirely
/// different caller sharing the session — costs a hash lookup instead of a
/// test. The session itself implements [`CiTest`], so it drops into every
/// existing call site (and nests: a session of a session is harmless).
///
/// Caching assumes the tester is a deterministic function of `(x, y, z)` up
/// to the key's equivalences — true for every tester in `fairsel_ci`. For
/// stochastic testers ([`fairsel_ci::NoisyOracleCi`]) the cache *pins* the
/// first answer, trading per-call flip independence for self-consistency
/// (the behavior a real cached service would exhibit).
pub struct CiSession<T> {
    tester: T,
    // analyze: bounded-by session memo; one per demanded query, sessions are LRU-evicted by the server registry and batch-scoped in the CLI
    cache: HashMap<QueryKey, CiOutcome>,
    stats: EngineStats,
    /// Index into `stats.phases` receiving current accounting.
    current_phase: Option<usize>,
    /// Long-lived worker pool for the parallel schedulers, spawned on
    /// first use and kept for the session's lifetime (rebuilt only when a
    /// batch asks for a different worker count).
    pool: Option<WorkerPool>,
    /// Speculatively computed keys not yet consumed by a demanded query —
    /// the ledger behind `speculative_hits` (each key counted once).
    // analyze: bounded-by subset of the memo keys (speculative wave size <= frontier size)
    spec_pending: HashSet<QueryKey>,
    /// Outcomes recomputed by sufficient-statistic patching at dataset
    /// extension, parked until demanded. Kept *outside* the memo so
    /// `cache_len()` starts at 0 and `outcomes_fingerprint()` covers
    /// exactly the queries this session's workload demanded — the same
    /// set a cold session on the concatenated table would memoize. A
    /// memo miss consumes from here first (booking `memo_patch_hits`)
    /// before issuing to the tester.
    // analyze: bounded-by subset of the pre-extension memo; drained into the memo on demand
    patched_pending: HashMap<QueryKey, CiOutcome>,
}

impl<T: CiTest> CiSession<T> {
    /// Wrap a tester (commonly `&mut tester`, since `&mut T: CiTest`).
    pub fn new(tester: T) -> Self {
        Self {
            tester,
            cache: HashMap::new(),
            stats: EngineStats::default(),
            current_phase: None,
            pool: None,
            spec_pending: HashSet::new(),
            patched_pending: HashMap::new(),
        }
    }

    /// Direct accounting of a cached single query.
    pub fn query(&mut self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        let key = QueryKey::new(x, y, z);
        self.stats.requested += 1;
        self.bump_phase(|p| p.requested += 1);
        if let Some(hit) = self.cache_get_tracked(&key) {
            self.stats.cache_hits += 1;
            self.bump_phase(|p| p.cache_hits += 1);
            return hit;
        }
        // analyze: wall-clock per-query wall_ms telemetry only; never branches execution
        let t0 = Instant::now();
        let out = self.tester.ci(x, y, z);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        self.stats.issued += 1;
        self.stats.wall_ms += ms;
        self.bump_phase(|p| {
            p.issued += 1;
            p.wall_ms += ms;
        });
        self.cache.insert(key, out);
        out
    }

    /// Switch telemetry accounting to the named phase (creating it on
    /// first use; re-entering a name resumes its bucket).
    pub fn set_phase(&mut self, name: &str) {
        let idx = match self.stats.phases.iter().position(|p| p.name == name) {
            Some(i) => i,
            None => {
                self.stats.phases.push(PhaseStats {
                    name: name.to_owned(),
                    ..Default::default()
                });
                self.stats.phases.len() - 1
            }
        };
        self.current_phase = Some(idx);
    }

    /// Stop attributing queries to any phase.
    pub fn clear_phase(&mut self) {
        self.current_phase = None;
    }

    fn bump_phase<F: FnOnce(&mut PhaseStats)>(&mut self, f: F) {
        if let Some(i) = self.current_phase {
            f(&mut self.stats.phases[i]);
        }
    }

    /// Session telemetry so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Telemetry as JSON.
    pub fn stats_json(&self) -> String {
        self.stats.to_json()
    }

    /// Number of distinct canonical queries memoized.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drop all memoized answers (telemetry is kept).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Order-independent FNV-1a digest of every memoized outcome's exact
    /// bit patterns (p-value, statistic, verdict), folded in canonical
    /// query-key order. Two sessions that answered the same workload get
    /// the same fingerprint **iff** every answer is bit-identical — the
    /// hook the rows-scaling benchmark uses to enforce the byte-identity
    /// contract across kernel implementations.
    pub fn outcomes_fingerprint(&self) -> u64 {
        let mut entries: Vec<(&QueryKey, &CiOutcome)> = self.cache.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (_, out) in entries {
            fold(out.p_value.to_bits());
            fold(out.statistic.to_bits());
            fold(out.independent as u64);
        }
        h
    }

    /// Borrow the wrapped tester.
    pub fn tester(&self) -> &T {
        &self.tester
    }

    /// Unwrap the tester.
    pub fn into_inner(self) -> T {
        self.tester
    }

    pub(crate) fn cache_get(&self, key: &QueryKey) -> Option<CiOutcome> {
        self.cache.get(key).copied()
    }

    /// Every memoized entry in canonical key order — the deterministic
    /// walk order the extension patch loop re-derives outcomes in.
    pub(crate) fn memo_snapshot(&self) -> Vec<(QueryKey, CiOutcome)> {
        let mut entries: Vec<(QueryKey, CiOutcome)> =
            self.cache.iter().map(|(k, v)| (k.clone(), *v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Cache lookup that also settles the speculation ledger: the first
    /// demanded hit on a speculatively computed key books one
    /// `speculative_hit` and retires the key.
    pub(crate) fn cache_get_tracked(&mut self, key: &QueryKey) -> Option<CiOutcome> {
        if let Some(hit) = self.cache.get(key).copied() {
            if self.spec_pending.remove(key) {
                self.stats.speculative_hits += 1;
            }
            return Some(hit);
        }
        // A memo miss consumes a parked patched outcome instead of
        // issuing: the answer moves into the memo (so the fingerprint
        // sees it, exactly as if this session had computed it cold) and
        // one `memo_patch_hit` is booked. The caller still accounts the
        // hit under `cache_hits`, keeping the per-batch arithmetic
        // (`requested == issued + hits`) unchanged.
        if let Some(out) = self.patched_pending.remove(key) {
            self.cache.insert(key.clone(), out);
            self.stats.memo_patch_hits += 1;
            return Some(out);
        }
        None
    }

    /// Non-consuming probe: is a patched outcome parked for `key`?
    /// Used by the speculation filter, which must not consume (only a
    /// demanded query may book a `memo_patch_hit`).
    pub(crate) fn patched_pending_contains(&self, key: &QueryKey) -> bool {
        self.patched_pending.contains_key(key)
    }

    /// Park a batch of patched outcomes and stamp the extension ledger.
    /// Called once at `extended_over` birth; `invalidated` counts the
    /// parent memos whose sufficient statistics could not be patched.
    pub(crate) fn set_patched_pending(
        &mut self,
        patched: HashMap<QueryKey, CiOutcome>,
        invalidated: u64,
    ) {
        self.stats.memoized_before = patched.len() as u64 + invalidated;
        self.stats.memo_patched = patched.len() as u64;
        self.stats.memo_invalidated = invalidated;
        self.patched_pending = patched;
    }

    pub(crate) fn cache_insert(&mut self, key: QueryKey, out: CiOutcome) {
        self.cache.insert(key, out);
    }

    /// Record a speculatively evaluated key: cached like any outcome, but
    /// accounted under `speculative_issued` (not `issued`) until a
    /// demanded query consumes it.
    pub(crate) fn cache_insert_speculative(&mut self, key: QueryKey, out: CiOutcome) {
        self.cache.insert(key.clone(), out);
        self.spec_pending.insert(key);
        self.stats.speculative_issued += 1;
    }

    pub(crate) fn tester_mut(&mut self) -> &mut T {
        &mut self.tester
    }

    /// Borrow the tester and the (lazily spawned) worker pool together —
    /// the two shared references a parallel batch dispatch needs.
    ///
    /// The pool only ever *grows* to the high-water worker count: a
    /// long-lived session serving callers with different `workers` values
    /// (the server registry deliberately shares sessions across that
    /// knob) must not tear threads down and respawn them per batch. Idle
    /// threads sleep on a condvar and cost nothing; a smaller request's
    /// chunks may therefore run with more concurrency than it asked for,
    /// which can only finish sooner and — by the byte-identity contract —
    /// never changes results.
    pub(crate) fn exec_parts(&mut self, workers: usize) -> (&T, &WorkerPool) {
        let grow = self.pool.as_ref().is_none_or(|p| p.threads() < workers);
        if grow {
            self.pool = Some(WorkerPool::new(workers));
        }
        (&self.tester, self.pool.as_ref().expect("pool just ensured"))
    }

    /// Overwrite the cumulative encoding-cache counters (read back from a
    /// batch-aware tester after each batched run).
    pub(crate) fn set_encode_stats(&mut self, stats: EncodeStats) {
        self.stats.encode_cache_hits = stats.hits;
        self.stats.encode_cache_misses = stats.misses;
        self.stats.encode_cache_evictions = stats.evictions;
        self.stats.narrow_code_bytes = stats.narrow_code_bytes;
        self.stats.dense_count_cells = stats.dense_count_cells;
        self.stats.append_rows = stats.append_rows;
        self.stats.extended_encodings = stats.extended_encodings;
    }

    /// Overwrite the cumulative scaffold-ledger counters (read back from
    /// the tester alongside the encode-cache counters).
    pub(crate) fn set_scaffold_stats(&mut self, stats: fairsel_ci::ScaffoldStats) {
        self.stats.extended_scaffolds = stats.extended;
        self.stats.rebuilt_scaffolds = stats.rebuilt;
        self.stats.resident_scaffolds = stats.resident;
        self.stats.scaffold_evictions = stats.evictions;
        self.stats.resident_suff_tables = stats.suff_tables;
        self.stats.suff_evictions = stats.suff_evictions;
    }

    pub(crate) fn account_batch(
        &mut self,
        requested: u64,
        issued: u64,
        hits: u64,
        wall_ms: f64,
        kind: BatchKind,
    ) {
        let st = &mut self.stats;
        st.requested += requested;
        st.issued += issued;
        st.cache_hits += hits;
        st.batches += 1;
        if matches!(
            kind,
            BatchKind::Parallel | BatchKind::BatchedParallel | BatchKind::GroupedParallel
        ) {
            st.parallel_batches += 1;
        }
        if matches!(
            kind,
            BatchKind::Batched
                | BatchKind::BatchedParallel
                | BatchKind::Grouped
                | BatchKind::GroupedParallel
        ) {
            st.batched_batches += 1;
        }
        if matches!(kind, BatchKind::Grouped | BatchKind::GroupedParallel) {
            st.grouped_batches += 1;
        }
        st.max_batch = st.max_batch.max(issued as usize);
        st.wall_ms += wall_ms;
        // Exact latency distribution per execution kind, beside the
        // cumulative wall_ms mean; counting a batch never changes it.
        kind.histogram().record((wall_ms * 1e3) as u64);
        if let Some(i) = self.current_phase {
            let p = &mut self.stats.phases[i];
            p.requested += requested;
            p.issued += issued;
            p.cache_hits += hits;
            p.wall_ms += wall_ms;
        }
    }
}

impl<T: CiTest> CiTest for CiSession<T> {
    fn ci(&mut self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
        self.query(x, y, z)
    }

    fn n_vars(&self) -> usize {
        self.tester.n_vars()
    }

    fn name(&self) -> &'static str {
        self.tester.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dependent iff x and y share parity; counts invocations.
    struct ParityCi {
        n: usize,
        calls: u64,
    }

    impl CiTest for ParityCi {
        fn ci(&mut self, x: &[VarId], y: &[VarId], _z: &[VarId]) -> CiOutcome {
            self.calls += 1;
            CiOutcome::decided((x[0] + y[0]) % 2 == 1)
        }
        fn n_vars(&self) -> usize {
            self.n
        }
    }

    #[test]
    fn cache_hit_on_repeat_and_symmetry() {
        let mut s = CiSession::new(ParityCi { n: 4, calls: 0 });
        let a = s.query(&[0], &[1], &[2]);
        let b = s.query(&[0], &[1], &[2]); // repeat
        let c = s.query(&[1], &[0], &[2]); // symmetric spelling
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(s.stats().requested, 3);
        assert_eq!(s.stats().issued, 1);
        assert_eq!(s.stats().cache_hits, 2);
        assert_eq!(s.tester().calls, 1);
        assert!((s.stats().dedup_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_conditioning_not_conflated() {
        let mut s = CiSession::new(ParityCi { n: 4, calls: 0 });
        s.query(&[0], &[1], &[]);
        s.query(&[0], &[1], &[2]);
        assert_eq!(s.stats().issued, 2);
        assert_eq!(s.cache_len(), 2);
    }

    #[test]
    fn phase_accounting_splits() {
        let mut s = CiSession::new(ParityCi { n: 6, calls: 0 });
        s.set_phase("p1");
        s.query(&[0], &[1], &[]);
        s.query(&[0], &[1], &[]);
        s.set_phase("p2");
        s.query(&[2], &[3], &[]);
        let st = s.stats();
        assert_eq!(st.phases.len(), 2);
        assert_eq!(st.phases[0].requested, 2);
        assert_eq!(st.phases[0].issued, 1);
        assert_eq!(st.phases[0].cache_hits, 1);
        assert_eq!(st.phases[1].requested, 1);
        assert_eq!(st.phases[1].issued, 1);
    }

    #[test]
    fn works_as_ci_test_and_nests() {
        let mut inner = CiSession::new(ParityCi { n: 4, calls: 0 });
        inner.query(&[0], &[1], &[]);
        let mut outer = CiSession::new(&mut inner);
        let out = outer.ci(&[1], &[0], &[]);
        assert!(out.independent);
        // Outer session missed; inner session answered from its cache.
        assert_eq!(outer.stats().issued, 1);
        assert_eq!(inner.stats().cache_hits, 1);
        assert_eq!(inner.tester().calls, 1);
    }

    #[test]
    fn json_shape() {
        let mut s = CiSession::new(ParityCi { n: 4, calls: 0 });
        s.set_phase("only");
        s.query(&[0], &[1], &[]);
        let j = s.stats_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        for needle in [
            "\"requested\":1",
            "\"issued\":1",
            "\"cache_hits\":0",
            "\"phases\":[",
            "\"name\":\"only\"",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }

    #[test]
    fn clear_cache_forces_reissue() {
        let mut s = CiSession::new(ParityCi { n: 4, calls: 0 });
        s.query(&[0], &[1], &[]);
        s.clear_cache();
        s.query(&[0], &[1], &[]);
        assert_eq!(s.stats().issued, 2);
    }
}
