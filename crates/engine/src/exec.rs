//! Batch execution: cache-aware deduplication plus the worker pool and
//! the batch-aware tester routing.

use crate::key::{CiQuery, QueryKey};
use crate::session::{BatchKind, CiSession};
use fairsel_ci::{CiOutcome, CiQueryRef, CiTest, CiTestBatch, CiTestShared, VarId};
use std::time::Instant;

/// Worker count the parallel scheduler defaults to: one per available
/// hardware thread.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Cache-resolution plan for one batch.
struct BatchPlan {
    /// Pre-resolved outcomes (cache hits); `None` awaits evaluation.
    results: Vec<Option<CiOutcome>>,
    /// Unique missing keys, first-occurrence order.
    miss_keys: Vec<QueryKey>,
    /// Index into `queries` of the representative of each missing key.
    miss_repr: Vec<usize>,
    /// For each query: which miss slot answers it (None = already resolved).
    assign: Vec<Option<usize>>,
    /// Queries answered without a tester invocation (cache + in-batch dedup).
    hits: u64,
}

fn plan<T: CiTest>(session: &mut CiSession<T>, queries: &[CiQuery]) -> BatchPlan {
    let mut plan = BatchPlan {
        results: vec![None; queries.len()],
        miss_keys: Vec::new(),
        miss_repr: Vec::new(),
        assign: vec![None; queries.len()],
        hits: 0,
    };
    let mut slot_of: std::collections::HashMap<QueryKey, usize> = std::collections::HashMap::new();
    for (i, q) in queries.iter().enumerate() {
        let key = q.key();
        if let Some(hit) = session.cache_get_tracked(&key) {
            plan.results[i] = Some(hit);
            plan.hits += 1;
            continue;
        }
        match slot_of.get(&key) {
            Some(&slot) => {
                // In-batch duplicate: evaluated once, counted as a hit.
                plan.assign[i] = Some(slot);
                plan.hits += 1;
            }
            None => {
                let slot = plan.miss_keys.len();
                slot_of.insert(key.clone(), slot);
                plan.miss_keys.push(key);
                plan.miss_repr.push(i);
                plan.assign[i] = Some(slot);
            }
        }
    }
    plan
}

fn finish<T: CiTest>(
    session: &mut CiSession<T>,
    queries: &[CiQuery],
    mut plan: BatchPlan,
    evaluated: Vec<CiOutcome>,
    wall_ms: f64,
    kind: BatchKind,
) -> Vec<CiOutcome> {
    debug_assert_eq!(evaluated.len(), plan.miss_keys.len());
    for (key, &out) in plan.miss_keys.drain(..).zip(&evaluated) {
        session.cache_insert(key, out);
    }
    let issued = evaluated.len() as u64;
    session.account_batch(queries.len() as u64, issued, plan.hits, wall_ms, kind);
    plan.results
        .into_iter()
        .zip(plan.assign)
        .map(|(res, slot)| match res {
            Some(out) => out,
            None => evaluated[slot.expect("unresolved query has a miss slot")],
        })
        .collect()
}

impl<T: CiTest> CiSession<T> {
    /// Evaluate a batch of independent queries sequentially, deduplicated
    /// against the memo cache and against each other. Results come back in
    /// input order.
    pub fn run_batch(&mut self, queries: &[CiQuery]) -> Vec<CiOutcome> {
        let plan = plan(self, queries);
        // analyze: wall-clock batch wall_ms telemetry only; never branches execution
        let t0 = Instant::now();
        let _sp = fairsel_obs::span_kv("tester.eval", || {
            vec![
                ("kind", "sequential".into()),
                ("misses", plan.miss_repr.len().to_string()),
            ]
        });
        let evaluated: Vec<CiOutcome> = plan
            .miss_repr
            .iter()
            .map(|&i| {
                let q = &queries[i];
                self.tester_mut().ci(&q.x, &q.y, &q.z)
            })
            .collect();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        finish(
            self,
            queries,
            plan,
            evaluated,
            wall_ms,
            BatchKind::Sequential,
        )
    }
}

impl<T: CiTestShared> CiSession<T> {
    /// Evaluate a batch of independent queries across `workers` threads.
    ///
    /// The unique cache misses are split into contiguous chunks dispatched
    /// on the session's persistent [`crate::pool::WorkerPool`]; each
    /// worker evaluates through a shared reference
    /// ([`CiTestShared::ci_shared`]), and results are reassembled by slot
    /// index — so the output is byte-identical to [`CiSession::run_batch`]
    /// regardless of thread scheduling. Small batches (or `workers <= 1`)
    /// take the sequential path to avoid dispatch overhead.
    pub fn run_batch_parallel(&mut self, queries: &[CiQuery], workers: usize) -> Vec<CiOutcome> {
        let plan = plan(self, queries);
        let n_miss = plan.miss_repr.len();
        let workers = workers.min(n_miss);
        if workers <= 1 {
            // Evaluate the misses inline (identical to run_batch) but keep
            // the plan we already computed.
            // analyze: wall-clock batch wall_ms telemetry only; never branches execution
            let t0 = Instant::now();
            let evaluated: Vec<CiOutcome> = plan
                .miss_repr
                .iter()
                .map(|&i| {
                    let q = &queries[i];
                    self.tester_mut().ci(&q.x, &q.y, &q.z)
                })
                .collect();
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            return finish(
                self,
                queries,
                plan,
                evaluated,
                wall_ms,
                BatchKind::Sequential,
            );
        }

        // analyze: wall-clock batch wall_ms telemetry only; never branches execution
        let t0 = Instant::now();
        let _sp = fairsel_obs::span_kv("tester.eval", || {
            vec![("kind", "parallel".into()), ("misses", n_miss.to_string())]
        });
        let repr: Vec<&CiQuery> = plan.miss_repr.iter().map(|&i| &queries[i]).collect();
        let chunk = n_miss.div_ceil(workers);
        let chunks: Vec<&[&CiQuery]> = repr.chunks(chunk).collect();
        let mut outs: Vec<Option<Vec<CiOutcome>>> = vec![None; chunks.len()];
        let (tester, pool) = self.exec_parts(workers);
        pool.run_scoped(
            outs.iter_mut()
                .zip(&chunks)
                .map(|(slot, qs)| {
                    move || {
                        let _sp = fairsel_obs::span_kv("pool.chunk", || {
                            vec![("queries", qs.len().to_string())]
                        });
                        *slot = Some(
                            qs.iter()
                                .map(|q| tester.ci_shared(&q.x, &q.y, &q.z))
                                .collect::<Vec<CiOutcome>>(),
                        );
                    }
                })
                .collect(),
        );
        let evaluated: Vec<CiOutcome> = outs
            .into_iter()
            .flat_map(|o| o.expect("pool task completed"))
            .collect();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        finish(self, queries, plan, evaluated, wall_ms, BatchKind::Parallel)
    }
}

/// Borrow the representative query of each unique miss as a
/// [`CiQueryRef`] batch.
fn miss_repr_refs<'q>(plan: &BatchPlan, queries: &'q [CiQuery]) -> Vec<CiQueryRef<'q>> {
    plan.miss_repr
        .iter()
        .map(|&i| {
            let q = &queries[i];
            CiQueryRef {
                x: &q.x,
                y: &q.y,
                z: &q.z,
            }
        })
        .collect()
}

impl<T: CiTestBatch> CiSession<T> {
    /// Evaluate a batch through the tester's [`CiTestBatch::eval_batch`]:
    /// cache planning and result assembly are identical to
    /// [`CiSession::run_batch`], but the unique misses are handed to the
    /// tester as *one* batch so it can amortize per-variable-set work
    /// (columnar encodings, residualizations) across the whole frontier.
    /// Outcomes are byte-identical to the per-query paths (the
    /// `CiTestBatch` contract).
    pub fn run_batch_batched(&mut self, queries: &[CiQuery]) -> Vec<CiOutcome> {
        let plan = plan(self, queries);
        self.eval_batched(queries, plan)
    }

    /// Parallel twin of [`CiSession::run_batch_batched`]: the unique
    /// misses are split into contiguous chunks, one `eval_batch` call per
    /// worker, dispatched on the persistent pool and reassembled by slot
    /// index. The tester's shared caches make the encoding pass common to
    /// all workers; results are byte-identical to every other execution
    /// path regardless of worker count.
    pub fn run_batch_batched_parallel(
        &mut self,
        queries: &[CiQuery],
        workers: usize,
    ) -> Vec<CiOutcome> {
        let plan = plan(self, queries);
        let n_miss = plan.miss_repr.len();
        let workers = workers.min(n_miss);
        if workers <= 1 {
            return self.eval_batched(queries, plan);
        }

        // analyze: wall-clock batch wall_ms telemetry only; never branches execution
        let t0 = Instant::now();
        let _sp = fairsel_obs::span_kv("tester.eval", || {
            vec![
                ("kind", "batched_parallel".into()),
                ("misses", n_miss.to_string()),
            ]
        });
        let repr = miss_repr_refs(&plan, queries);
        let chunk = n_miss.div_ceil(workers);
        let chunks: Vec<&[CiQueryRef<'_>]> = repr.chunks(chunk).collect();
        let mut outs: Vec<Option<Vec<CiOutcome>>> = vec![None; chunks.len()];
        let (tester, pool) = self.exec_parts(workers);
        pool.run_scoped(
            outs.iter_mut()
                .zip(&chunks)
                .map(|(slot, qs)| {
                    move || {
                        let _sp = fairsel_obs::span_kv("pool.chunk", || {
                            vec![("queries", qs.len().to_string())]
                        });
                        *slot = Some(tester.eval_batch(qs));
                    }
                })
                .collect(),
        );
        let evaluated: Vec<CiOutcome> = outs
            .into_iter()
            .flat_map(|o| o.expect("pool task completed"))
            .collect();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let out = finish(
            self,
            queries,
            plan,
            evaluated,
            wall_ms,
            BatchKind::BatchedParallel,
        );
        self.refresh_encode_stats();
        out
    }

    /// One `eval_batch` call over a planned batch's unique misses —
    /// shared by the sequential batched path and the parallel path's
    /// small-batch fallback.
    fn eval_batched(&mut self, queries: &[CiQuery], plan: BatchPlan) -> Vec<CiOutcome> {
        // analyze: wall-clock batch wall_ms telemetry only; never branches execution
        let t0 = Instant::now();
        let _sp = fairsel_obs::span_kv("tester.eval", || {
            vec![
                ("kind", "batched".into()),
                ("misses", plan.miss_repr.len().to_string()),
            ]
        });
        let repr = miss_repr_refs(&plan, queries);
        let evaluated = self.tester().eval_batch(&repr);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let out = finish(self, queries, plan, evaluated, wall_ms, BatchKind::Batched);
        self.refresh_encode_stats();
        out
    }

    /// The Z-grouped scheduler — the production batch path.
    ///
    /// The unique cache misses are partitioned by *canonical conditioning
    /// set* and each group is evaluated through the tester's
    /// [`CiTestBatch::eval_z_group`], so the per-`Z` scaffold
    /// (stratification, design-matrix factorization, standardized
    /// conditioning block) is built once per distinct set instead of once
    /// per query. With `workers > 1` the groups are split into steal-able
    /// chunks on the session's persistent worker pool — one shared deque,
    /// so a giant group cannot serialize a frontier level — and results
    /// are reassembled in input order; outcomes are byte-identical at
    /// every worker count (the `eval_z_group` contract).
    ///
    /// `speculative` queries are predicted future work (e.g. the next
    /// frontier level's halves): the ones not already cached or demanded
    /// by this batch ride along in the same dispatch, are cached, and are
    /// accounted under `speculative_issued` — never `issued` — until a
    /// demanded query consumes them (`speculative_hits`). Speculation can
    /// therefore never change results, only when they are computed, and
    /// `issued + speculative_hits` is conserved against a
    /// speculation-free run of the same workload.
    pub fn run_batch_grouped(
        &mut self,
        queries: &[CiQuery],
        speculative: &[CiQuery],
        workers: usize,
    ) -> Vec<CiOutcome> {
        let plan = plan(self, queries);
        let n_demand = plan.miss_repr.len();

        // Accept each speculative key once, and only if nothing else —
        // cache or this batch — already answers it.
        let mut spec_keys: Vec<QueryKey> = Vec::new();
        let mut spec_refs: Vec<CiQueryRef<'_>> = Vec::new();
        if !speculative.is_empty() {
            let demanded: std::collections::HashSet<&QueryKey> = plan.miss_keys.iter().collect();
            let mut seen: std::collections::HashSet<QueryKey> = std::collections::HashSet::new();
            for q in speculative {
                let key = q.key();
                // A parked patched outcome already answers the key; it is
                // skipped *without* being consumed — only a demanded
                // query may book the `memo_patch_hit`.
                if self.cache_get(&key).is_some()
                    || self.patched_pending_contains(&key)
                    || demanded.contains(&key)
                    || !seen.insert(key.clone())
                {
                    continue;
                }
                spec_keys.push(key);
                spec_refs.push(CiQueryRef {
                    x: &q.x,
                    y: &q.y,
                    z: &q.z,
                });
            }
        }

        // Demanded miss representatives first (slot order), speculative
        // extras after; canonical conditioning sets come from the keys.
        let mut items: Vec<CiQueryRef<'_>> = miss_repr_refs(&plan, queries);
        items.extend(spec_refs);
        let total = items.len();
        let zs: Vec<&[VarId]> = plan
            .miss_keys
            .iter()
            .chain(&spec_keys)
            .map(|k| k.z())
            .collect();

        // Partition by conditioning set, first-occurrence order.
        let mut group_of: std::collections::HashMap<&[VarId], usize> =
            std::collections::HashMap::new();
        let mut groups: Vec<(&[VarId], Vec<usize>)> = Vec::new();
        for (i, &z) in zs.iter().enumerate() {
            match group_of.get(z) {
                Some(&g) => groups[g].1.push(i),
                None => {
                    group_of.insert(z, groups.len());
                    groups.push((z, vec![i]));
                }
            }
        }

        let parallel = workers > 1 && total > 1;
        // analyze: wall-clock batch wall_ms telemetry only; never branches execution
        let t0 = Instant::now();
        let _sp = fairsel_obs::span_kv("tester.eval", || {
            vec![
                (
                    "kind",
                    if parallel {
                        "grouped_parallel"
                    } else {
                        "grouped"
                    }
                    .into(),
                ),
                ("misses", n_demand.to_string()),
                ("speculative", (total - n_demand).to_string()),
                ("zgroups", groups.len().to_string()),
            ]
        });
        let mut evaluated: Vec<Option<CiOutcome>> = vec![None; total];
        if !parallel {
            let tester = self.tester();
            for (z, idxs) in &groups {
                let refs: Vec<CiQueryRef<'_>> = idxs.iter().map(|&i| items[i]).collect();
                let _sp = fairsel_obs::span_kv("zgroup.eval", || {
                    vec![
                        ("z_len", z.len().to_string()),
                        ("queries", refs.len().to_string()),
                    ]
                });
                let outs = tester.eval_z_group(z, &refs);
                for (&i, o) in idxs.iter().zip(outs) {
                    evaluated[i] = Some(o);
                }
            }
        } else {
            // Steal-able tasks: each Z-group is split into chunks bounded
            // by total/(workers·4), so even one giant group spreads
            // across the pool while small groups stay single-task.
            let chunk = total.div_ceil(workers * 4).max(1);
            let tasks: Vec<(&[VarId], Vec<usize>)> = groups
                .iter()
                .flat_map(|(z, idxs)| idxs.chunks(chunk).map(|c| (*z, c.to_vec())))
                .collect();
            let mut outs: Vec<Option<Vec<CiOutcome>>> = vec![None; tasks.len()];
            let items_ref = &items;
            let (tester, pool) = self.exec_parts(workers);
            pool.run_scoped(
                outs.iter_mut()
                    .zip(&tasks)
                    .map(|(slot, (z, idxs))| {
                        move || {
                            let refs: Vec<CiQueryRef<'_>> =
                                idxs.iter().map(|&i| items_ref[i]).collect();
                            let _sp = fairsel_obs::span_kv("zgroup.eval", || {
                                vec![
                                    ("z_len", z.len().to_string()),
                                    ("queries", refs.len().to_string()),
                                ]
                            });
                            *slot = Some(tester.eval_z_group(z, &refs));
                        }
                    })
                    .collect(),
            );
            for ((_, idxs), outs) in tasks.iter().zip(outs) {
                for (&i, o) in idxs.iter().zip(outs.expect("pool task completed")) {
                    evaluated[i] = Some(o);
                }
            }
        }
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

        let demand_out: Vec<CiOutcome> = evaluated[..n_demand]
            .iter()
            .map(|o| o.expect("demanded query evaluated"))
            .collect();
        let spec_out: Vec<CiOutcome> = evaluated[n_demand..]
            .iter()
            .map(|o| o.expect("speculative query evaluated"))
            .collect();
        drop(zs);
        drop(groups);
        let kind = if parallel {
            BatchKind::GroupedParallel
        } else {
            BatchKind::Grouped
        };
        let out = finish(self, queries, plan, demand_out, wall_ms, kind);
        for (key, o) in spec_keys.into_iter().zip(spec_out) {
            self.cache_insert_speculative(key, o);
        }
        self.refresh_encode_stats();
        out
    }

    /// Copy the tester's cumulative encode-cache counters into the
    /// session telemetry. Batched runs do this automatically; call it
    /// after per-query routes (e.g. SeqSel's single-query path) so the
    /// `encode_cache_*` fields reflect the tester's real cache activity.
    pub fn refresh_encode_stats(&mut self) {
        let s = self.tester().encode_cache_stats();
        self.set_encode_stats(s);
        let sc = self.tester().scaffold_stats();
        self.set_scaffold_stats(sc);
    }

    /// Lineage-aware session transfer for dataset extension.
    ///
    /// Build a session over `child` — a table produced by appending rows
    /// to this session's dataset ([`fairsel_ci::EncodedTable::extend`]) —
    /// carrying forward what stays valid and re-deriving what can be
    /// re-derived in O(batch):
    ///
    /// * **Tester scaffolds are extended.** The tester decides per
    ///   scaffold kind what survives ([`CiTestBatch::extend_over`]):
    ///   stratifications and design matrices extend over the appended
    ///   rows; whole-sample artifacts (residuals, standardized blocks)
    ///   rebuild on demand. Either way the child answers bit-for-bit what
    ///   a cold session over the concatenated table answers.
    /// * **Memoized outcomes are patched or invalidated.** Every memoized
    ///   p-value depends on `n`, so none survives verbatim — but testers
    ///   whose sufficient statistic is an integer contingency table
    ///   ([`CiTestBatch::patched_outcome`]) re-derive the outcome at the
    ///   new `n` from retained per-stratum counts patched by the appended
    ///   rows alone. Patched outcomes are parked *outside* the memo and
    ///   consumed on first demand, so the child is born memo-empty and
    ///   its fingerprint covers exactly the demanded workload. Queries
    ///   whose counts were evicted, whose encoding isn't prefix-stable,
    ///   or whose tester can't patch (float moment sums reassociate) are
    ///   invalidated and re-issued on demand — the PR-8 path. The ledger
    ///   (`memoized_before = memo_patched + memo_invalidated`) is stamped
    ///   at birth.
    /// * **An empty batch patches everything trivially.** When the child
    ///   has no appended rows, every memoized outcome is still exact:
    ///   the whole memo parks as patched, zero invalidated, no tester
    ///   calls.
    ///
    /// Returns `None` when the tester has no extension path (the default
    /// for testers that never opted in) — the caller falls back to a cold
    /// rebuild. The child's scaffold/encode counters are refreshed before
    /// returning, so the warm-birth ledger (`extended_scaffolds`,
    /// `extended_encodings`, `append_rows`, `memo_patched`) is visible
    /// before any query.
    pub fn extended_over(
        &self,
        child: std::sync::Arc<fairsel_ci::EncodedTable>,
    ) -> Option<CiSession<Box<dyn CiTestBatch + Send + Sync>>> {
        let empty_batch = child.n_rows() == child.base_rows();
        let tester = self.tester().extend_over(child)?;
        let mut session = CiSession::new(tester);
        let mut patched: std::collections::HashMap<QueryKey, CiOutcome> =
            std::collections::HashMap::new();
        let mut invalidated = 0u64;
        for (key, out) in self.memo_snapshot() {
            if empty_batch {
                // n is unchanged: the memoized outcome is still exact.
                patched.insert(key, out);
                continue;
            }
            match session.tester().patched_outcome(key.x(), key.y(), key.z()) {
                Some(out) => {
                    patched.insert(key, out);
                }
                None => invalidated += 1,
            }
        }
        session.set_patched_pending(patched, invalidated);
        session.refresh_encode_stats();
        Some(session)
    }

    /// The invalidate-everything transfer: scaffolds extend exactly as in
    /// [`CiSession::extended_over`], but no memoized outcome is patched —
    /// every one is re-issued on demand. This is the pre-patching
    /// baseline, kept callable so benchmarks can measure what patching
    /// saves; the ledger records the whole memo as `memo_invalidated`.
    pub fn extended_over_invalidating(
        &self,
        child: std::sync::Arc<fairsel_ci::EncodedTable>,
    ) -> Option<CiSession<Box<dyn CiTestBatch + Send + Sync>>> {
        let tester = self.tester().extend_over(child)?;
        let mut session = CiSession::new(tester);
        session.set_patched_pending(std::collections::HashMap::new(), self.cache_len() as u64);
        session.refresh_encode_stats();
        Some(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_ci::{CiTestShared, VarId};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Shared-capable tester: independent iff |x0 − y0| > 1. Counts calls
    /// atomically so parallel tests can assert issue counts.
    struct GapCi {
        n: usize,
        calls: AtomicU64,
    }

    impl GapCi {
        fn new(n: usize) -> Self {
            Self {
                n,
                calls: AtomicU64::new(0),
            }
        }
    }

    impl CiTest for GapCi {
        fn ci(&mut self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
            self.ci_shared(x, y, z)
        }
        fn n_vars(&self) -> usize {
            self.n
        }
    }

    impl CiTestShared for GapCi {
        fn ci_shared(&self, x: &[VarId], y: &[VarId], _z: &[VarId]) -> CiOutcome {
            self.calls.fetch_add(1, Ordering::Relaxed);
            CiOutcome::decided(x[0].abs_diff(y[0]) > 1)
        }
    }

    fn queries(n: usize) -> Vec<CiQuery> {
        (0..n).map(|i| CiQuery::new(&[i], &[i + 2], &[])).collect()
    }

    #[test]
    fn batch_results_in_input_order() {
        let mut s = CiSession::new(GapCi::new(64));
        let qs = queries(10);
        let out = s.run_batch(&qs);
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|o| o.independent));
        assert_eq!(s.stats().issued, 10);
        assert_eq!(s.stats().batches, 1);
    }

    #[test]
    fn batch_dedups_within_and_across() {
        let mut s = CiSession::new(GapCi::new(64));
        // Same canonical key three times (plain repeat + symmetric flip).
        let qs = vec![
            CiQuery::new(&[0], &[2], &[]),
            CiQuery::new(&[0], &[2], &[]),
            CiQuery::new(&[2], &[0], &[]),
            CiQuery::new(&[5], &[6], &[]),
        ];
        let out = s.run_batch(&qs);
        assert_eq!(s.stats().issued, 2, "two unique keys");
        assert_eq!(s.stats().cache_hits, 2);
        assert_eq!(out[0], out[1]);
        assert_eq!(out[0], out[2]);
        assert!(!out[3].independent);
        // A second batch of the same queries is all hits.
        s.run_batch(&qs);
        assert_eq!(s.stats().issued, 2);
        assert_eq!(s.stats().cache_hits, 6);
        assert_eq!(s.tester().calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn parallel_matches_sequential() {
        let qs = queries(257);
        let mut seq = CiSession::new(GapCi::new(1024));
        let a = seq.run_batch(&qs);
        for workers in [2, 3, 8] {
            let mut par = CiSession::new(GapCi::new(1024));
            let b = par.run_batch_parallel(&qs, workers);
            assert_eq!(a, b, "parallel({workers}) diverged");
            assert_eq!(par.stats().issued, seq.stats().issued);
            assert_eq!(par.stats().parallel_batches, 1);
        }
    }

    #[test]
    fn parallel_small_batch_falls_back() {
        let mut s = CiSession::new(GapCi::new(8));
        let out = s.run_batch_parallel(&[CiQuery::new(&[0], &[3], &[])], 8);
        assert!(out[0].independent);
        assert_eq!(
            s.stats().parallel_batches,
            0,
            "single miss should not spawn"
        );
    }

    #[test]
    fn parallel_only_issues_misses() {
        let mut s = CiSession::new(GapCi::new(64));
        let qs = queries(20);
        s.run_batch(&qs[..10]);
        s.run_batch_parallel(&qs, 4);
        assert_eq!(s.stats().issued, 20);
        assert_eq!(s.tester().calls.load(Ordering::Relaxed), 20);
        assert_eq!(s.stats().cache_hits, 10);
        assert_eq!(s.stats().max_batch, 10);
    }

    #[test]
    fn default_workers_positive() {
        assert!(default_workers() >= 1);
    }

    /// Batch-aware tester: same decision rule as [`GapCi`], but counts
    /// `eval_batch` invocations and reports fake encode-cache telemetry.
    struct BatchGapCi {
        inner: GapCi,
        batch_calls: AtomicU64,
    }

    impl BatchGapCi {
        fn new(n: usize) -> Self {
            Self {
                inner: GapCi::new(n),
                batch_calls: AtomicU64::new(0),
            }
        }
    }

    impl CiTest for BatchGapCi {
        fn ci(&mut self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
            self.inner.ci(x, y, z)
        }
        fn n_vars(&self) -> usize {
            self.inner.n_vars()
        }
    }

    impl CiTestShared for BatchGapCi {
        fn ci_shared(&self, x: &[VarId], y: &[VarId], z: &[VarId]) -> CiOutcome {
            self.inner.ci_shared(x, y, z)
        }
    }

    impl CiTestBatch for BatchGapCi {
        fn eval_batch(&self, queries: &[CiQueryRef<'_>]) -> Vec<CiOutcome> {
            self.batch_calls.fetch_add(1, Ordering::Relaxed);
            queries
                .iter()
                .map(|q| self.ci_shared(q.x, q.y, q.z))
                .collect()
        }
        fn encode_cache_stats(&self) -> fairsel_ci::EncodeStats {
            fairsel_ci::EncodeStats {
                hits: self.inner.calls.load(Ordering::Relaxed),
                misses: 1,
                ..Default::default()
            }
        }
    }

    #[test]
    fn batched_matches_per_query_paths() {
        let qs = queries(57);
        let mut seq = CiSession::new(GapCi::new(1024));
        let reference = seq.run_batch(&qs);

        let mut batched = CiSession::new(BatchGapCi::new(1024));
        let got = batched.run_batch_batched(&qs);
        assert_eq!(reference, got);
        assert_eq!(batched.stats().issued, seq.stats().issued);
        assert_eq!(batched.stats().batched_batches, 1);
        assert_eq!(batched.stats().parallel_batches, 0);
        assert_eq!(
            batched.tester().batch_calls.load(Ordering::Relaxed),
            1,
            "whole frontier must be one eval_batch call"
        );

        for workers in [1usize, 2, 4] {
            let mut par = CiSession::new(BatchGapCi::new(1024));
            let got = par.run_batch_batched_parallel(&qs, workers);
            assert_eq!(reference, got, "workers {workers}");
            assert_eq!(par.stats().issued, seq.stats().issued);
            assert_eq!(par.stats().batched_batches, 1);
        }
    }

    /// Queries spread over three conditioning sets, so the grouped
    /// scheduler actually partitions.
    fn grouped_queries(n: usize) -> Vec<CiQuery> {
        (0..n)
            .map(|i| CiQuery::new(&[i], &[i + 2], &[100 + i % 3]))
            .collect()
    }

    #[test]
    fn grouped_matches_per_query_paths() {
        let qs = grouped_queries(57);
        let mut seq = CiSession::new(GapCi::new(1024));
        let reference = seq.run_batch(&qs);
        for workers in [1usize, 2, 4] {
            let mut s = CiSession::new(BatchGapCi::new(1024));
            let got = s.run_batch_grouped(&qs, &[], workers);
            assert_eq!(reference, got, "workers {workers}");
            assert_eq!(s.stats().issued, seq.stats().issued);
            assert_eq!(s.stats().grouped_batches, 1);
            assert_eq!(s.stats().batched_batches, 1);
            assert_eq!(
                s.stats().parallel_batches,
                u64::from(workers > 1),
                "workers {workers}"
            );
        }
    }

    #[test]
    fn speculation_accounts_and_conserves_issued() {
        let qs = grouped_queries(30);
        let (first, second) = qs.split_at(18);

        // Reference: the same two batches without speculation.
        let mut off = CiSession::new(BatchGapCi::new(1024));
        off.run_batch_grouped(first, &[], 2);
        let ref_second = off.run_batch_grouped(second, &[], 2);
        let issued_off = off.stats().issued;

        // Speculative run: the second batch rides along with the first.
        let mut on = CiSession::new(BatchGapCi::new(1024));
        on.run_batch_grouped(first, second, 2);
        assert_eq!(on.stats().issued, 18, "speculation must not inflate issued");
        assert_eq!(on.stats().speculative_issued, 12);
        assert_eq!(on.stats().speculative_hits, 0);
        assert_eq!(on.stats().speculative_wasted(), 12, "nothing consumed yet");
        let got_second = on.run_batch_grouped(second, &[], 2);
        assert_eq!(
            ref_second, got_second,
            "speculation must not change results"
        );
        assert_eq!(on.stats().speculative_hits, 12);
        assert_eq!(on.stats().speculative_wasted(), 0);
        assert_eq!(
            on.stats().issued + on.stats().speculative_hits,
            issued_off,
            "issued is conserved: every speculative hit replaces one demand-issued test"
        );
        // A speculative hit is also an ordinary cache hit.
        assert_eq!(on.stats().cache_hits, 12);
    }

    #[test]
    fn speculation_skips_cached_demanded_and_duplicate_keys() {
        let qs = grouped_queries(12);
        let mut s = CiSession::new(BatchGapCi::new(1024));
        s.run_batch_grouped(&qs[..4], &[], 1);
        // Speculative list: already-cached keys, keys demanded by this
        // very batch (plus a symmetric respelling), and one duplicate.
        let mut spec: Vec<CiQuery> = qs[..8].to_vec();
        spec.push(CiQuery::new(&qs[8].y, &qs[8].x, &qs[8].z)); // respelled dup of a fresh key
        spec.push(qs[8].clone());
        spec.push(qs[9].clone());
        s.run_batch_grouped(&qs[4..8], &spec, 1);
        assert_eq!(
            s.stats().speculative_issued,
            2,
            "only the two genuinely new keys (8, 9) are speculated"
        );
        assert_eq!(s.stats().issued, 8);
        // Consuming one of them counts exactly one hit.
        s.run_batch_grouped(&qs[8..9], &[], 1);
        assert_eq!(s.stats().speculative_hits, 1);
        assert_eq!(s.stats().issued, 8, "query 8 was answered speculatively");
    }

    #[test]
    fn batched_dedups_and_reports_encode_stats() {
        let mut s = CiSession::new(BatchGapCi::new(64));
        let qs = vec![
            CiQuery::new(&[0], &[2], &[]),
            CiQuery::new(&[2], &[0], &[]), // symmetric duplicate
            CiQuery::new(&[5], &[6], &[]),
        ];
        s.run_batch_batched(&qs);
        assert_eq!(s.stats().issued, 2);
        assert_eq!(s.stats().cache_hits, 1);
        // Encode counters were synced from the tester after the batch.
        assert_eq!(s.stats().encode_cache_hits, 2);
        assert_eq!(s.stats().encode_cache_misses, 1);
        // Replaying the batch is all memo hits: no new eval_batch work.
        s.run_batch_batched(&qs);
        assert_eq!(s.stats().issued, 2);
        assert_eq!(s.tester().batch_calls.load(Ordering::Relaxed), 2);
        assert_eq!(s.tester().inner.calls.load(Ordering::Relaxed), 2);
    }

    /// Testers that never opt into extension make `extended_over` decline,
    /// signalling the caller to rebuild cold.
    #[test]
    fn extended_over_declines_without_tester_support() {
        use fairsel_table::{Column, Role, Table};
        let t = Table::new(vec![Column::cat("a", Role::Feature, vec![0, 1], 2)]).unwrap();
        let enc = std::sync::Arc::new(fairsel_ci::EncodedTable::new(&t));
        let s = CiSession::new(BatchGapCi::new(8));
        assert!(s.extended_over(enc).is_none());
    }

    /// Lineage-aware transfer with a real tester: the child session is
    /// born warm (append/extension counters visible before any query),
    /// memo-empty, and answers the whole workload byte-identically to a
    /// cold session over the concatenated table — including every engine
    /// counter that does not measure the transfer itself.
    #[test]
    fn extended_session_matches_cold_on_concatenated_table() {
        use fairsel_ci::GTest;
        use fairsel_table::{Column, Role, Table};

        // Deterministic mixed rows (splitmix-style) — no RNG dependency.
        let gen_rows = |n: usize, seed: u64| {
            let mix = |i: u64| {
                let mut v = (i + seed).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                v ^= v >> 31;
                v
            };
            let a: Vec<u32> = (0..n).map(|i| (mix(i as u64) % 3) as u32).collect();
            let b: Vec<u32> = a
                .iter()
                .enumerate()
                .map(|(i, &v)| (v + (mix(i as u64 ^ 0xff) % 2) as u32) % 3)
                .collect();
            let c: Vec<u32> = (0..n)
                .map(|i| (mix(i as u64 ^ 0xa5a5) % 2) as u32)
                .collect();
            Table::new(vec![
                Column::cat("a", Role::Feature, a, 3),
                Column::cat("b", Role::Feature, b, 3),
                Column::cat("c", Role::Target, c, 2),
            ])
            .unwrap()
        };
        let parent_t = gen_rows(600, 5);
        let batch = gen_rows(150, 6);
        let qs = vec![
            CiQuery::new(&[0], &[2], &[]),
            CiQuery::new(&[0], &[2], &[1]),
            CiQuery::new(&[1], &[2], &[0]),
            CiQuery::new(&[0, 1], &[2], &[]),
        ];

        let parent_enc = std::sync::Arc::new(fairsel_ci::EncodedTable::new(&parent_t));
        let mut parent = CiSession::new(GTest::over(parent_enc.clone(), 0.05));
        parent.run_batch_grouped(&qs, &[], 1);

        let child_enc = std::sync::Arc::new(parent_enc.extend(&batch).unwrap());
        let mut warm = parent
            .extended_over(child_enc)
            .expect("GTest supports extension");
        // Born warm: transfer ledger visible before any query runs.
        let birth = warm.stats().clone();
        assert!(birth.append_rows > 0, "{birth:?}");
        assert!(birth.extended_encodings > 0, "{birth:?}");
        assert!(birth.extended_scaffolds > 0, "{birth:?}");
        assert_eq!(birth.rebuilt_scaffolds, 0, "{birth:?}");
        assert!(birth.scaffolds_conserved(), "{birth:?}");
        // The extension ledger is stamped at birth and conserved: every
        // parent memo either patched (sufficient statistic re-derived at
        // the new n) or invalidated.
        assert_eq!(birth.memoized_before, 4, "{birth:?}");
        assert!(birth.memos_conserved(), "{birth:?}");
        assert!(birth.memo_patched > 0, "{birth:?}");
        // Patched outcomes are parked, not memoized: the child is born
        // memo-empty so its fingerprint covers the demanded workload.
        assert_eq!(warm.cache_len(), 0);

        let concat = parent_t.concat(&batch).unwrap();
        let mut cold = CiSession::new(GTest::new(&concat, 0.05));
        for workers in [1, 4] {
            let a = warm.run_batch_grouped(&qs, &[], workers);
            let b = cold.run_batch_grouped(&qs, &[], workers);
            assert_eq!(a, b, "workers={workers}");
        }
        assert_eq!(warm.outcomes_fingerprint(), cold.outcomes_fingerprint());
        // Engine counters: every consumed patch replaces one cold issue
        // (and is booked as a cache hit), so issued + patch hits and
        // hits − patch hits are conserved against the cold run.
        let (w, c) = (warm.stats(), cold.stats());
        assert_eq!(w.requested, c.requested);
        assert_eq!(w.issued + w.memo_patch_hits, c.issued);
        assert_eq!(w.cache_hits, c.cache_hits + w.memo_patch_hits);
        assert_eq!(
            w.memo_patch_hits, w.memo_patched,
            "the workload demanded every patched key"
        );
        assert!(w.issued < c.issued, "patching must save issues");
        assert_eq!(w.batches, c.batches);
        assert!(w.scaffolds_conserved(), "{w:?}");
        // The savings: the warm session re-derived fewer scaffolds.
        assert!(
            w.rebuilt_scaffolds < c.rebuilt_scaffolds,
            "warm rebuilt {} vs cold {}",
            w.rebuilt_scaffolds,
            c.rebuilt_scaffolds
        );
    }
}
