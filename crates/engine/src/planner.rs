//! The frontier planner: GrpSel's recursive halving, re-expressed as
//! level-synchronous batches of independent group queries.
//!
//! The paper's Algorithms 3–4 recurse depth-first: test a group, split on
//! failure, descend. Correct, but it serializes work that is logically
//! independent — at any moment the set of undecided groups ("the
//! frontier") could all be tested at once. [`HalvingPlanner`] keeps that
//! frontier explicit: the caller tests every group in the current
//! frontier (one batch the execution engine can parallelize), reports the
//! verdicts, and [`HalvingPlanner::advance`] produces admitted groups,
//! exhausted singletons, and the next frontier of halves.
//!
//! The query *multiset* is identical to the depth-first recursion — only
//! the order changes — so test counts and selections are preserved.

use crate::key::CiQuery;
use crate::session::CiSession;
use fairsel_ci::{CiOutcome, CiTest, CiTestShared, VarId};

/// Result of advancing the frontier one level.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FrontierOutcome {
    /// Groups whose test passed: every member is admitted at once
    /// (soundness by the composition axiom, Lemma 1.2).
    pub admitted: Vec<Vec<VarId>>,
    /// Failing singletons: the recursion bottomed out on these.
    pub exhausted: Vec<VarId>,
}

/// Level-synchronous view of recursive halving over a variable group.
#[derive(Clone, Debug)]
pub struct HalvingPlanner {
    frontier: Vec<Vec<VarId>>,
    levels: usize,
}

impl HalvingPlanner {
    /// Start with `items` as the single root group (empty = already done).
    pub fn new(items: &[VarId]) -> Self {
        let frontier = if items.is_empty() {
            Vec::new()
        } else {
            vec![items.to_vec()]
        };
        Self {
            frontier,
            levels: 0,
        }
    }

    /// Start from an explicit set of root groups (empty groups are
    /// dropped). This is how `SelectConfig::max_group` pre-splits a wide
    /// root into subgroups narrow enough for finite-sample group tests to
    /// retain power.
    pub fn from_groups<I: IntoIterator<Item = Vec<VarId>>>(groups: I) -> Self {
        Self {
            frontier: groups.into_iter().filter(|g| !g.is_empty()).collect(),
            levels: 0,
        }
    }

    /// Is there anything left to test?
    pub fn is_done(&self) -> bool {
        self.frontier.is_empty()
    }

    /// The groups awaiting verdicts — each one an independent query.
    pub fn frontier(&self) -> &[Vec<VarId>] {
        &self.frontier
    }

    /// Levels processed so far (the `log n` factor of §4.3).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The groups the *next* frontier will contain for every current
    /// group whose test fails: its left and right halves, in frontier
    /// order. These are the predictable queries a speculative scheduler
    /// can issue while the current level evaluates — if a group passes,
    /// its halves' answers are wasted work; if it fails, the next level
    /// is already cached. Groups of one have no halves (they exhaust).
    pub fn speculative_halves(&self) -> Vec<Vec<VarId>> {
        self.frontier
            .iter()
            .filter(|g| g.len() > 1)
            .flat_map(|g| {
                let mid = g.len() / 2;
                [g[..mid].to_vec(), g[mid..].to_vec()]
            })
            .collect()
    }

    /// Consume one verdict per frontier group (`true` = the group's test
    /// passed). Passing groups are admitted whole; failing singletons are
    /// exhausted; failing larger groups are split at the midpoint into the
    /// next frontier, preserving member order.
    ///
    /// # Panics
    /// Panics when `certified.len()` disagrees with the frontier.
    pub fn advance(&mut self, certified: &[bool]) -> FrontierOutcome {
        assert_eq!(
            certified.len(),
            self.frontier.len(),
            "planner: one verdict per frontier group required"
        );
        let mut out = FrontierOutcome::default();
        let mut next = Vec::new();
        for (group, &ok) in self.frontier.drain(..).zip(certified) {
            if ok {
                out.admitted.push(group);
            } else if group.len() == 1 {
                out.exhausted.push(group[0]);
            } else {
                let mid = group.len() / 2;
                let (left, right) = group.split_at(mid);
                next.push(left.to_vec());
                next.push(right.to_vec());
            }
        }
        self.frontier = next;
        self.levels += 1;
        out
    }
}

/// Decide, for every group, whether *some* conditioning set in
/// `alternatives` (tried in order) certifies `group ⊥ target | alt`.
///
/// Alternatives are issued as waves: wave `k` batches the `k`-th
/// alternative for every still-undecided group, so a group certified early
/// is never queried again — the same early-exit the sequential `∃A' ⊆ A`
/// loop has, but with each wave being one engine batch.
pub fn exists_certificate<T: CiTest>(
    session: &mut CiSession<T>,
    groups: &[Vec<VarId>],
    target: &[VarId],
    alternatives: &[Vec<VarId>],
) -> Vec<bool> {
    exists_with(groups, target, alternatives, |qs| session.run_batch(qs))
}

/// Parallel twin of [`exists_certificate`]: each wave fans out across
/// `workers` threads.
pub fn exists_certificate_parallel<T: CiTestShared>(
    session: &mut CiSession<T>,
    groups: &[Vec<VarId>],
    target: &[VarId],
    alternatives: &[Vec<VarId>],
    workers: usize,
) -> Vec<bool> {
    exists_with(groups, target, alternatives, |qs| {
        session.run_batch_parallel(qs, workers)
    })
}

/// The wave engine behind both variants, generic over how a batch is
/// executed — callers with their own dispatch (e.g. GrpSel choosing
/// sequential vs parallel per run) plug in a closure.
pub fn exists_with<F>(
    groups: &[Vec<VarId>],
    target: &[VarId],
    alternatives: &[Vec<VarId>],
    mut run: F,
) -> Vec<bool>
where
    F: FnMut(&[CiQuery]) -> Vec<CiOutcome>,
{
    exists_with_spec(groups, target, alternatives, &[], |qs, _| run(qs))
}

/// [`exists_with`] with speculation: the closure receives the wave's
/// demanded queries *and* a list of speculative extras to evaluate in the
/// same dispatch. `speculative` — typically the later waves of this
/// frontier plus the next level's halves — rides with wave 0 only; later
/// waves then resolve from cache. The demanded query stream (and hence
/// the certification result) is exactly that of [`exists_with`].
pub fn exists_with_spec<F>(
    groups: &[Vec<VarId>],
    target: &[VarId],
    alternatives: &[Vec<VarId>],
    speculative: &[CiQuery],
    mut run: F,
) -> Vec<bool>
where
    F: FnMut(&[CiQuery], &[CiQuery]) -> Vec<CiOutcome>,
{
    let mut certified = vec![false; groups.len()];
    let mut undecided: Vec<usize> = (0..groups.len()).collect();
    for (wave, alt) in alternatives.iter().enumerate() {
        if undecided.is_empty() {
            break;
        }
        let batch: Vec<CiQuery> = undecided
            .iter()
            .map(|&g| CiQuery::new(&groups[g], target, alt))
            .collect();
        let spec = if wave == 0 { speculative } else { &[] };
        let _sp = fairsel_obs::span_kv("planner.level", || {
            vec![
                ("wave", wave.to_string()),
                ("undecided", batch.len().to_string()),
                ("speculative", spec.len().to_string()),
            ]
        });
        let outcomes = run(&batch, spec);
        let mut still = Vec::with_capacity(undecided.len());
        for (&g, out) in undecided.iter().zip(&outcomes) {
            if out.independent {
                certified[g] = true;
            } else {
                still.push(g);
            }
        }
        undecided = still;
    }
    certified
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsel_ci::CiOutcome;

    /// Group passes iff it contains no "bad" member.
    struct BadSetCi {
        bad: Vec<VarId>,
        n: usize,
    }

    impl CiTest for BadSetCi {
        fn ci(&mut self, x: &[VarId], _y: &[VarId], _z: &[VarId]) -> CiOutcome {
            CiOutcome::decided(!x.iter().any(|v| self.bad.contains(v)))
        }
        fn n_vars(&self) -> usize {
            self.n
        }
    }

    fn run_halving(items: &[VarId], bad: &[VarId]) -> (Vec<VarId>, Vec<VarId>, u64) {
        let mut session = CiSession::new(BadSetCi {
            bad: bad.to_vec(),
            n: 1000,
        });
        let mut planner = HalvingPlanner::new(items);
        let mut admitted = Vec::new();
        let mut exhausted = Vec::new();
        while !planner.is_done() {
            let batch: Vec<CiQuery> = planner
                .frontier()
                .iter()
                .map(|g| CiQuery::new(g, &[999], &[]))
                .collect();
            let outcomes = session.run_batch(&batch);
            let verdicts: Vec<bool> = outcomes.iter().map(|o| o.independent).collect();
            let step = planner.advance(&verdicts);
            admitted.extend(step.admitted.into_iter().flatten());
            exhausted.extend(step.exhausted);
        }
        admitted.sort_unstable();
        exhausted.sort_unstable();
        (admitted, exhausted, session.stats().issued)
    }

    #[test]
    fn isolates_bad_members() {
        let items: Vec<VarId> = (0..16).collect();
        let (admitted, exhausted, _) = run_halving(&items, &[3, 11]);
        assert_eq!(exhausted, vec![3, 11]);
        let expect: Vec<VarId> = (0..16).filter(|v| *v != 3 && *v != 11).collect();
        assert_eq!(admitted, expect);
    }

    #[test]
    fn all_good_is_one_test() {
        let items: Vec<VarId> = (0..64).collect();
        let (admitted, exhausted, issued) = run_halving(&items, &[]);
        assert_eq!(admitted.len(), 64);
        assert!(exhausted.is_empty());
        assert_eq!(issued, 1, "a clean group needs exactly one test");
    }

    #[test]
    fn k_log_n_scaling() {
        // One bad member in 64: ~2·log2(64) tests, nowhere near 64.
        let items: Vec<VarId> = (0..64).collect();
        let (_, exhausted, issued) = run_halving(&items, &[17]);
        assert_eq!(exhausted, vec![17]);
        assert!(issued <= 13, "issued {issued} tests for k=1, n=64");
    }

    #[test]
    fn empty_start_is_done() {
        let p = HalvingPlanner::new(&[]);
        assert!(p.is_done());
    }

    #[test]
    #[should_panic(expected = "one verdict per frontier group")]
    fn verdict_arity_checked() {
        let mut p = HalvingPlanner::new(&[1, 2]);
        p.advance(&[true, false]);
    }

    #[test]
    fn exists_certificate_early_exit() {
        // Alternative 0 certifies everything: only one wave is issued.
        let mut session = CiSession::new(BadSetCi {
            bad: vec![],
            n: 100,
        });
        let groups = vec![vec![1], vec![2], vec![3]];
        let alts = vec![vec![], vec![50]];
        let got = exists_certificate(&mut session, &groups, &[99], &alts);
        assert_eq!(got, vec![true; 3]);
        assert_eq!(session.stats().issued, 3, "second alternative never tried");
    }

    #[test]
    fn exists_certificate_falls_through_alternatives() {
        // `bad` contains 1, so group [1] fails every alternative; groups
        // [2] and [3] pass on the first.
        let mut session = CiSession::new(BadSetCi {
            bad: vec![1],
            n: 100,
        });
        let groups = vec![vec![1], vec![2], vec![3]];
        let alts = vec![vec![], vec![50]];
        let got = exists_certificate(&mut session, &groups, &[99], &alts);
        assert_eq!(got, vec![false, true, true]);
        // Wave 0: three queries; wave 1: only the undecided [1].
        assert_eq!(session.stats().issued, 4);
    }
}
