//! [`WorkerPool`] — a long-lived worker pool with a shared task deque.
//!
//! The previous scheduler spawned a fresh `std::thread::scope` per batch
//! and split the unique misses into contiguous chunks, one per worker.
//! That has two costs the frontier workload exposes: thread spawn/join on
//! every level (GrpSel issues one batch per halving level, most of them
//! small), and static chunking (a Z-group whose conditioning set induces a
//! giant stratum pins one worker while the others idle). This pool fixes
//! both: threads are spawned once and owned by the session, and every
//! batch is pushed as a list of *tasks* (one per Z-group chunk) onto one
//! shared deque that idle workers pop from — dynamic balancing without
//! per-task channels.
//!
//! `run_scoped` executes borrowed closures on the pool's `'static`
//! threads. Safety rests on one invariant: **the call does not return
//! until every submitted task has finished** (a latch counts completions,
//! and worker panics are caught so the count always reaches zero); the
//! borrows a task captures therefore outlive its execution. A worker
//! panic is re-raised on the caller's thread after the batch drains.

use fairsel_obs::TrackedMutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar};

type Task = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    // analyze: bounded-by holds one frontier batch of tasks; fully drained every wave
    queue: TrackedMutex<VecDeque<Task>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// Completion latch for one `run_scoped` batch.
struct Latch {
    remaining: TrackedMutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            remaining: TrackedMutex::new("engine.pool.latch", count),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn complete(&self, ok: bool) {
        if !ok {
            self.panicked.store(true, Ordering::SeqCst);
        }
        let mut remaining = self.remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock();
        while *remaining > 0 {
            remaining = self.remaining.wait(&self.done, remaining);
        }
    }
}

/// A persistent worker pool; see the module docs for the execution model.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `threads` workers (clamped to at least 1). Workers sleep on a
    /// condvar until tasks arrive, so an idle pool costs nothing.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: TrackedMutex::new("engine.pool.queue", VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Execute every task on the pool and block until all complete.
    /// Tasks may borrow from the caller's stack (see the module docs for
    /// why that is sound). Panics with `"CI worker panicked"` if any task
    /// panicked — after the whole batch has drained, so no task is left
    /// running with dangling borrows.
    pub fn run_scoped<'scope, F>(&self, tasks: Vec<F>)
    where
        F: FnOnce() + Send + 'scope,
    {
        if tasks.is_empty() {
            return;
        }
        let latch = Arc::new(Latch::new(tasks.len()));
        {
            let mut queue = self.shared.queue.lock();
            for task in tasks {
                let latch = Arc::clone(&latch);
                let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                    let ok = catch_unwind(AssertUnwindSafe(task)).is_ok();
                    latch.complete(ok);
                });
                // SAFETY: the job is only executed before `run_scoped`
                // returns — the latch wait below blocks until every job
                // has completed (panics included, via `catch_unwind`) — so
                // every borrow with lifetime 'scope is still live whenever
                // the job runs. The transmute only erases that lifetime.
                let job: Task =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(job) };
                queue.push_back(job);
            }
            self.shared.available.notify_all();
        }
        latch.wait();
        if latch.panicked.load(Ordering::SeqCst) {
            panic!("CI worker panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    // Busy-time integral across every pool in the process: each task's
    // wall time lands in one monotone counter, so `busy_us / elapsed_us`
    // gives mean pool utilization without per-task exposition.
    let busy = fairsel_obs::counter("engine_pool_busy_us");
    loop {
        let task = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.queue.wait(&shared.available, queue);
            }
        };
        // analyze: wall-clock worker busy-time counter only; never branches execution
        let t0 = std::time::Instant::now();
        task();
        busy.add(t0.elapsed().as_micros() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executes_every_task_and_is_reusable() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        let counter = AtomicUsize::new(0);
        for round in 1..=3usize {
            let tasks: Vec<_> = (0..17)
                .map(|_| {
                    let counter = &counter;
                    move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    }
                })
                .collect();
            pool.run_scoped(tasks);
            assert_eq!(counter.load(Ordering::SeqCst), 17 * round);
        }
    }

    #[test]
    fn tasks_write_through_borrowed_slots() {
        let pool = WorkerPool::new(2);
        let mut out = vec![0u64; 64];
        pool.run_scoped(
            out.iter_mut()
                .enumerate()
                .map(|(i, slot)| move || *slot = (i * i) as u64)
                .collect(),
        );
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = WorkerPool::new(1);
        pool.run_scoped(Vec::<fn()>::new());
    }

    #[test]
    #[should_panic(expected = "CI worker panicked")]
    fn worker_panic_propagates_after_drain() {
        let pool = WorkerPool::new(2);
        let completed = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..8)
            .map(|i| {
                let completed = &completed;
                let job: Box<dyn FnOnce() + Send> = Box::new(move || {
                    if i == 3 {
                        panic!("boom");
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                });
                job
            })
            .collect();
        pool.run_scoped(tasks);
    }

    #[test]
    fn pool_survives_a_panicked_batch() {
        let pool = WorkerPool::new(2);
        let bad: Vec<Box<dyn FnOnce() + Send>> = vec![Box::new(|| panic!("boom"))];
        assert!(catch_unwind(AssertUnwindSafe(|| pool.run_scoped(bad))).is_err());
        // Workers caught the panic and keep serving.
        let counter = AtomicUsize::new(0);
        pool.run_scoped(
            (0..5)
                .map(|_| {
                    let counter = &counter;
                    move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    }
                })
                .collect(),
        );
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }
}
