//! Canonical query identity.
//!
//! A CI query `X ⊥ Y | Z` is invariant under (a) reordering variables
//! within each side, (b) repeating a variable within a side, and (c)
//! swapping `X` and `Y` (symmetry of conditional independence). The
//! [`QueryKey`] quotient makes all equivalent spellings hash to the same
//! cache slot, so `seqsel`'s `(x, S, A')` and a later `(S, x, A')` from PC
//! hit the same memo entry.

use fairsel_ci::VarId;

/// An unevaluated CI query, sides in caller order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CiQuery {
    pub x: Vec<VarId>,
    pub y: Vec<VarId>,
    pub z: Vec<VarId>,
}

impl CiQuery {
    /// Build a query from borrowed sides.
    pub fn new(x: &[VarId], y: &[VarId], z: &[VarId]) -> Self {
        Self {
            x: x.to_vec(),
            y: y.to_vec(),
            z: z.to_vec(),
        }
    }

    /// The canonical identity of this query.
    pub fn key(&self) -> QueryKey {
        QueryKey::new(&self.x, &self.y, &self.z)
    }
}

/// Canonicalized query key: each side sorted and deduplicated, and the two
/// test sides ordered so the lexicographically smaller one comes first.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryKey {
    x: Vec<VarId>,
    y: Vec<VarId>,
    z: Vec<VarId>,
}

fn sorted_dedup(vs: &[VarId]) -> Vec<VarId> {
    let mut out = vs.to_vec();
    out.sort_unstable();
    out.dedup();
    out
}

impl QueryKey {
    /// Canonicalize `(x, y, z)`.
    pub fn new(x: &[VarId], y: &[VarId], z: &[VarId]) -> Self {
        let mut xs = sorted_dedup(x);
        let mut ys = sorted_dedup(y);
        if ys < xs {
            std::mem::swap(&mut xs, &mut ys);
        }
        Self {
            x: xs,
            y: ys,
            z: sorted_dedup(z),
        }
    }

    /// First (canonically smaller) test side.
    pub fn x(&self) -> &[VarId] {
        &self.x
    }

    /// Second test side.
    pub fn y(&self) -> &[VarId] {
        &self.y
    }

    /// Conditioning set, sorted.
    pub fn z(&self) -> &[VarId] {
        &self.z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_in_x_and_y() {
        assert_eq!(
            QueryKey::new(&[3], &[1, 2], &[0]),
            QueryKey::new(&[1, 2], &[3], &[0])
        );
    }

    #[test]
    fn order_within_sides_irrelevant() {
        assert_eq!(
            QueryKey::new(&[2, 1], &[5], &[9, 7]),
            QueryKey::new(&[1, 2], &[5], &[7, 9])
        );
    }

    #[test]
    fn duplicates_collapse() {
        assert_eq!(
            QueryKey::new(&[1, 1], &[2], &[3, 3]),
            QueryKey::new(&[1], &[2], &[3])
        );
    }

    #[test]
    fn different_conditioning_distinguished() {
        assert_ne!(
            QueryKey::new(&[1], &[2], &[]),
            QueryKey::new(&[1], &[2], &[3])
        );
    }

    #[test]
    fn different_sides_distinguished() {
        assert_ne!(
            QueryKey::new(&[1], &[2], &[]),
            QueryKey::new(&[1], &[3], &[])
        );
        assert_ne!(
            QueryKey::new(&[1, 2], &[3], &[]),
            QueryKey::new(&[1], &[2, 3], &[])
        );
    }

    #[test]
    fn query_key_roundtrip() {
        let q = CiQuery::new(&[4, 2], &[1], &[8, 6]);
        let k = q.key();
        assert_eq!(k.x(), &[1]);
        assert_eq!(k.y(), &[2, 4]);
        assert_eq!(k.z(), &[6, 8]);
    }
}
