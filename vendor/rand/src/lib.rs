//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`rngs::StdRng`] (here xoshiro256++ seeded through SplitMix64 —
//! deterministic, high quality, and fast; stream values differ from
//! upstream `rand`, which only matters to tests that hard-code upstream
//! sequences, of which there are none), the [`Rng`] / [`RngCore`] /
//! [`SeedableRng`] traits, and [`seq::SliceRandom::shuffle`].
//!
//! Everything is implemented from scratch; determinism under a fixed seed
//! is the one contract the workspace's experiments rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level generator: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding support. Upstream `rand` seeds from byte arrays; the workspace
/// only ever seeds from a `u64`, so that is the whole trait here.
pub trait SeedableRng: Sized {
    /// Deterministically construct a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly by [`Rng::gen`] (upstream: the
/// `Standard` distribution).
pub trait SampleStandard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // Use the high bit: low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] accepts (upstream: `SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)`; `span = 0` means the full 2^64 range.
/// Modulo with rejection of the final partial block keeps the draw exactly
/// uniform.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let r = ((u64::MAX % span) + 1) % span; // 2^64 mod span
    let zone = u64::MAX - r; // zone + 1 accepted values, a multiple of span
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u64; // 0 encodes full range
                let off = uniform_u64_below(rng, span);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        start + (end - start) * f64::sample_standard(rng)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (mirroring upstream's `impl<R: RngCore + ?Sized> Rng for R`).
pub trait Rng: RngCore {
    /// Draw a value of `T` from its standard distribution (`f64`: uniform
    /// `[0,1)`; `bool`: fair coin; integers: uniform over the full range).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++ with SplitMix64
    /// state expansion. Not the same stream as upstream `rand`'s ChaCha12
    /// `StdRng`, but the workspace only relies on "same seed, same data".
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the recommended seeding procedure for
            // the xoshiro family.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (the only `rand::seq` item the workspace uses).
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>().to_bits(), c.gen::<f64>().to_bits());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0..=4u32);
            assert!(w <= 4);
            let x = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
            let f = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }

    #[test]
    fn bool_is_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..100_000).filter(|_| rng.gen::<bool>()).count();
        assert!((45_000..55_000).contains(&heads));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn works_through_dyn_like_generics() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let a = draw(&mut rng);
        assert!((0.0..1.0).contains(&a));
    }
}
